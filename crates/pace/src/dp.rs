//! The PACE dynamic-programming partitioner (Knudsen & Madsen, Codes/
//! CASHE '96 — reference [7] of the paper).
//!
//! Given a fixed data-path allocation, PACE chooses which BSBs to move
//! to hardware so that total execution time is minimal under the area
//! left for controllers. The DP walks the BSB sequence once per area
//! level; a block either stays in software, or closes a *run* of
//! adjacent hardware blocks `[j, i]`. Runs matter because adjacent
//! hardware blocks communicate for free — this is PACE's "inclusion of
//! adjacent sequences".
//!
//! Controller areas are the realistic, list-schedule-based figures from
//! [`crate::compute_metrics`], so a partition produced here reflects
//! what the synthesised system would actually cost (§5.1).
//!
//! # The allocation-free hot path
//!
//! An allocation-space sweep runs this DP millions of times, so the
//! core is built around a reusable [`DpScratch`] workspace instead of
//! per-call heap tables:
//!
//! * **Scratch reuse** — the run tables are flat structure-of-arrays
//!   slabs (`run_off[j] .. run_off[j] + run_len[j]` indexes the runs
//!   starting at block `j`) and the `dp`/`choice` grids are flat
//!   vectors, all owned by the [`DpScratch`] a caller threads through
//!   repeated evaluations. After warm-up, evaluating a candidate
//!   allocates nothing: buffers are cleared and refilled in place.
//! * **Monotone pruning** — a run's controller quanta only grow as the
//!   run extends (`ctl_sum` is a sum of non-negative areas), so the
//!   per-cell scan over runs ending at block `i-1` can *stop* at the
//!   first run that exceeds the remaining area budget `a`, instead of
//!   skipping it and scanning on. For the same reason, runs whose
//!   quanta exceed the total level count are never materialised at
//!   all: the table for start `j` is truncated at the first such run,
//!   which also bounds the scan from the feasibility side.
//! * **Intra-candidate parallelism** — within one row `i`, the cells
//!   `dp[i][a]` for different area levels `a` are independent (they
//!   read only rows `< i`), so the row can be split across scoped
//!   worker threads ([`DpScratch::with_dp_threads`]). Rows stay
//!   sequential. Results are bit-identical at any worker count; the
//!   mode is opt-in because it only pays off when `levels` is large
//!   and the caller is not already saturating the machine with
//!   candidate-level parallelism (see `SearchOptions::dp_threads`).
//!
//! The pre-optimisation implementation is retained as
//! [`reference_partition_from_metrics`] (hidden from docs): the
//! equivalence tests pin the new core against it, and the perf
//! harness uses it as the measured baseline.

use crate::artifacts::SearchArtifacts;
use crate::metrics::BsbMetrics;
use crate::stop::StopSignal;
use crate::{CommCosts, PaceConfig, PaceError};
use lycos_core::RMap;
use lycos_hwlib::{Area, Cycles, HwLibrary};
use lycos_ir::BsbArray;
use std::ops::Range;

/// A hardware/software partition and its cost breakdown.
#[derive(Clone, PartialEq, Debug)]
pub struct Partition {
    /// Block placement: `true` = hardware.
    pub in_hw: Vec<bool>,
    /// Total execution time of the partitioned system, communication
    /// included.
    pub total_time: Cycles,
    /// Execution time of the all-software solution.
    pub all_sw_time: Cycles,
    /// Bus time included in `total_time`.
    pub comm_time: Cycles,
    /// Exact (unquantised) controller area of the hardware blocks.
    pub controller_area: Area,
    /// Data-path area of the allocation this partition was built for.
    pub datapath_area: Area,
    /// The maximal hardware runs, in order.
    pub runs: Vec<Range<usize>>,
}

impl Partition {
    /// The paper's speed-up figure: the decrease in execution time from
    /// the all-software solution, as a percentage of the hybrid time —
    /// `(T_sw − T_hybrid) / T_hybrid × 100`.
    pub fn speedup_pct(&self) -> f64 {
        if self.total_time.count() == 0 {
            return 0.0;
        }
        (self.all_sw_time.count() as f64 - self.total_time.count() as f64)
            / self.total_time.count() as f64
            * 100.0
    }

    /// Number of blocks in hardware.
    pub fn hw_count(&self) -> usize {
        self.in_hw.iter().filter(|&&h| h).count()
    }

    /// Static fraction of blocks in hardware (`HW` of Table 1's HW/SW
    /// column, by operation count).
    pub fn hw_fraction_static(&self, bsbs: &BsbArray) -> f64 {
        let total: usize = bsbs.total_ops();
        if total == 0 {
            return 0.0;
        }
        let hw: usize = bsbs
            .iter()
            .zip(&self.in_hw)
            .filter(|&(_, &h)| h)
            .map(|(b, _)| b.op_count())
            .sum();
        hw as f64 / total as f64
    }

    /// Data-path share of the used hardware area (Table 1's *Size*):
    /// `datapath / (datapath + controllers)`.
    pub fn size_fraction(&self) -> f64 {
        self.datapath_area
            .fraction_of(self.datapath_area + self.controller_area)
    }
}

/// Sentinel for an unreachable DP cell, far from `u64` overflow even
/// after a saturating add of any real cost.
const INF: u64 = u64::MAX / 4;

/// Minimum DP cells one intra-candidate worker must own before the row
/// split engages. The workers are spawned and joined *per row* (the
/// mutable row slice changes every iteration, so the scope cannot
/// outlive it), and a spawn/join cycle costs tens of microseconds — a
/// worker's chunk must be big enough that its scan dwarfs that, or the
/// split makes the evaluation strictly slower. At ~4k cells a chunk
/// costs on the order of 100 µs of scan work; smaller rows run
/// sequentially whatever `dp_threads` says (the result is identical
/// either way).
const DP_PAR_MIN_CELLS: usize = 4096;

/// Reusable workspace of the PACE dynamic program.
///
/// Owns the flat run tables and the `dp`/`choice` grids so that
/// repeated evaluations — one per candidate of an allocation-space
/// sweep — perform no steady-state heap allocation: buffers are
/// cleared and refilled in place, and capacity ratchets up to the
/// largest problem seen. A scratch is freely reusable across
/// *different* applications and budgets; every evaluation resizes its
/// views first (pinned by property tests in the exploration crate).
///
/// Construct with [`DpScratch::new`] (sequential) or
/// [`DpScratch::with_dp_threads`] (opt-in intra-candidate row
/// parallelism), then thread `&mut` through
/// [`partition_with_scratch`] or [`partition_from_metrics`].
#[derive(Clone, Debug)]
pub struct DpScratch {
    /// Intra-candidate workers: `1` = sequential, `0` = one per core.
    dp_threads: usize,
    /// Run the [`LANES`]-wide chunked inner scan (bit-identical to the
    /// scalar kernel, which always handles the row tail).
    simd: bool,
    /// Per-block hardware feasibility under the current metrics.
    feasible: Vec<bool>,
    /// `run_off[j]` = first flat index of the runs starting at `j`.
    run_off: Vec<usize>,
    /// Number of materialised runs starting at `j` (truncated at the
    /// first infeasible block *or* the first run over the level
    /// budget).
    run_len: Vec<usize>,
    /// Run execution time (hardware + boundary communication).
    run_time: Vec<u64>,
    /// Run controller quanta (`ceil(Σ ctl / quantum)`), nondecreasing
    /// along each `j` slab.
    run_quanta: Vec<usize>,
    /// Exact run controller area, for the backtrack's accounting.
    run_ctl: Vec<u64>,
    /// Run boundary bus cost, so the backtrack reads the table instead
    /// of re-querying the [`CommCosts`] memo.
    run_comm: Vec<u64>,
    /// `dp[i * (levels+1) + a]`: min time for blocks `0..i` within `a`
    /// quanta.
    dp: Vec<u64>,
    /// `0` = block `i-1` in software; `j` = hardware run `j-1..=i-1`
    /// (1-based start).
    choice: Vec<u32>,
    /// Problem shape of the last [`DpScratch::evaluate`] call.
    l: usize,
    levels: usize,
}

impl Default for DpScratch {
    fn default() -> Self {
        DpScratch::new()
    }
}

impl DpScratch {
    /// An empty sequential workspace.
    pub fn new() -> Self {
        Self::with_dp_threads(1)
    }

    /// A workspace whose evaluations split each DP row across
    /// `dp_threads` scoped workers (`0` = one per available core,
    /// `1` = sequential). Results are identical at any setting; rows
    /// too small to give each worker ~4k cells stay sequential, since
    /// the per-row spawn/join would otherwise outweigh the scan.
    pub fn with_dp_threads(dp_threads: usize) -> Self {
        DpScratch {
            dp_threads,
            simd: true,
            feasible: Vec::new(),
            run_off: Vec::new(),
            run_len: Vec::new(),
            run_time: Vec::new(),
            run_quanta: Vec::new(),
            run_ctl: Vec::new(),
            run_comm: Vec::new(),
            dp: Vec::new(),
            choice: Vec::new(),
            l: 0,
            levels: 0,
        }
    }

    /// The configured intra-candidate worker count.
    pub fn dp_threads(&self) -> usize {
        self.dp_threads
    }

    /// Reconfigures the intra-candidate worker count in place, keeping
    /// the warmed buffers.
    pub fn set_dp_threads(&mut self, dp_threads: usize) {
        self.dp_threads = dp_threads;
    }

    /// Whether evaluations use the lane-chunked inner scan.
    pub fn simd(&self) -> bool {
        self.simd
    }

    /// Selects between the lane-chunked ([`true`], the default) and the
    /// pure scalar inner scan. Results are bit-identical either way —
    /// the scalar kernel is the reference the chunked one must match —
    /// so this is a perf knob and an A/B seam, never a semantic one.
    pub fn set_simd(&mut self, simd: bool) {
        self.simd = simd;
    }

    /// Workers the next row split would actually use for `width` cells.
    fn effective_dp_workers(&self, width: usize) -> usize {
        let requested = if self.dp_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.dp_threads
        };
        requested.clamp(1, (width / DP_PAR_MIN_CELLS).max(1))
    }

    /// Runs the forward DP over `metrics`, filling the run tables and
    /// the `dp`/`choice` grids in place, and returns the hybrid total
    /// time at the full controller budget — everything a sweep needs
    /// to rank a candidate. Call [`DpScratch::backtrack`] afterwards
    /// to materialise the winning [`Partition`].
    pub(crate) fn evaluate(
        &mut self,
        bsbs: &BsbArray,
        metrics: &[BsbMetrics],
        comm: &mut CommCosts,
        ctl_budget: Area,
        config: &PaceConfig,
    ) -> u64 {
        self.evaluate_stoppable(
            bsbs,
            metrics,
            comm,
            ctl_budget,
            config,
            &StopSignal::never(),
        )
        .expect("a never-signal cannot stop the DP")
    }

    /// [`DpScratch::evaluate`] with a cooperative stop check between DP
    /// rows: returns `None` if `stop` trips mid-evaluation (the grids
    /// are then partially filled and must not be backtracked), `Some`
    /// with the exact hybrid time otherwise. A row is the natural
    /// abandon granularity — each costs `O(width × runs)` and rows are
    /// the unit the scoped row-split parallelism already joins on, so
    /// the check adds one branch per row and bounds deadline overrun to
    /// a single row.
    pub(crate) fn evaluate_stoppable(
        &mut self,
        bsbs: &BsbArray,
        metrics: &[BsbMetrics],
        comm: &mut CommCosts,
        ctl_budget: Area,
        config: &PaceConfig,
        stop: &StopSignal,
    ) -> Option<u64> {
        let l = bsbs.len();
        debug_assert_eq!(metrics.len(), l, "one metrics entry per block");
        let q = config.quantum;
        let levels = (ctl_budget.gates() / q) as usize;
        self.l = l;
        self.levels = levels;

        // Per-run cost tables, flat SoA. The slab for start j covers
        // runs j..=i for growing i; it stops at the first infeasible
        // block, and at the first run whose quanta exceed `levels` —
        // ctl_sum only grows, so no longer run could ever fit either.
        self.feasible.clear();
        self.feasible
            .extend(metrics.iter().map(|m| m.hw_feasible()));
        self.run_off.clear();
        self.run_len.clear();
        self.run_time.clear();
        self.run_quanta.clear();
        self.run_ctl.clear();
        self.run_comm.clear();
        for j in 0..l {
            self.run_off.push(self.run_time.len());
            let mut hw_sum = 0u64;
            let mut ctl_sum = 0u64;
            let mut len = 0usize;
            for (i, m) in metrics.iter().enumerate().take(l).skip(j) {
                if !self.feasible[i] {
                    break;
                }
                hw_sum += m.hw_time.expect("feasible").count();
                ctl_sum += m.controller_area.expect("feasible").gates();
                let quanta = ctl_sum.div_ceil(q) as usize;
                if quanta > levels {
                    break; // over budget now and for every longer run
                }
                let c = comm.cost(bsbs, &config.comm, j, i);
                self.run_time.push(hw_sum + c);
                self.run_quanta.push(quanta);
                self.run_ctl.push(ctl_sum);
                self.run_comm.push(c);
                len += 1;
            }
            self.run_len.push(len);
        }

        // dp/choice grids. Only row 0 needs initialising: every cell of
        // rows 1..=l is written before it is read, so stale values from
        // the previous evaluation are harmless and the resize is a
        // no-op whenever the shape already fits.
        let width = levels + 1;
        let need = (l + 1) * width;
        self.dp.resize(need, INF);
        self.choice.resize(need, 0);
        self.dp[..width].fill(0);

        let workers = self.effective_dp_workers(width);
        let simd = self.simd;
        let run_off: &[usize] = &self.run_off;
        let run_len: &[usize] = &self.run_len;
        let run_time: &[u64] = &self.run_time;
        let run_quanta: &[usize] = &self.run_quanta;
        let dp = &mut self.dp;
        let choice = &mut self.choice;
        let kernel = if simd {
            dp_row_cells_lanes
        } else {
            dp_row_cells
        };
        let stoppable = !stop.is_never();
        for i in 1..=l {
            if stoppable && stop.check().is_some() {
                return None;
            }
            let sw_prev = metrics[i - 1].sw_time.count();
            let (done, rest) = dp.split_at_mut(i * width);
            let dp_row = &mut rest[..width];
            let choice_row = &mut choice[i * width..(i + 1) * width];
            if workers <= 1 {
                kernel(
                    i, width, 0, done, dp_row, choice_row, sw_prev, run_off, run_len, run_time,
                    run_quanta,
                );
            } else {
                // Cells of one row only read rows < i (`done`), so
                // contiguous chunks of the area axis are independent.
                let chunk = width.div_ceil(workers);
                std::thread::scope(|scope| {
                    for (w, (dp_chunk, choice_chunk)) in dp_row
                        .chunks_mut(chunk)
                        .zip(choice_row.chunks_mut(chunk))
                        .enumerate()
                    {
                        let done = &*done;
                        scope.spawn(move || {
                            kernel(
                                i,
                                width,
                                w * chunk,
                                done,
                                dp_chunk,
                                choice_chunk,
                                sw_prev,
                                run_off,
                                run_len,
                                run_time,
                                run_quanta,
                            );
                        });
                    }
                });
            }
        }
        Some(self.dp[l * width + levels])
    }

    /// Controller levels of the last [`DpScratch::evaluate`] call —
    /// the controller budget in quanta, i.e. the top index of
    /// [`DpScratch::final_row`].
    pub(crate) fn levels(&self) -> usize {
        self.levels
    }

    /// The final DP row of the last [`DpScratch::evaluate`] call:
    /// `row[a]` is the minimal hybrid time over all blocks within `a`
    /// controller quanta, non-increasing in `a`, with `row[levels]`
    /// the value `evaluate` returned. This is the whole time×area
    /// trade-off of one candidate at quantum granularity — the seam
    /// the Pareto-front search harvests.
    pub(crate) fn final_row(&self) -> &[u64] {
        let width = self.levels + 1;
        &self.dp[self.l * width..][..width]
    }

    /// Materialises the [`Partition`] chosen by the last
    /// [`DpScratch::evaluate`] call. Reads the run tables for the
    /// per-run communication and controller figures — the
    /// [`CommCosts`] memo is never re-queried.
    pub(crate) fn backtrack(&self, metrics: &[BsbMetrics], datapath_area: Area) -> Partition {
        self.backtrack_at(metrics, datapath_area, self.levels)
    }

    /// [`DpScratch::backtrack`] at an arbitrary controller level
    /// `level ≤ levels`: the partition the same evaluation would have
    /// produced under a controller budget of exactly `level` quanta.
    /// Sound because a cell `dp[i][a]` only ever reads cells and runs
    /// with quanta `≤ a` — the grid under `level` is bit-identical to
    /// the grid a smaller-budget evaluation would fill.
    pub(crate) fn backtrack_at(
        &self,
        metrics: &[BsbMetrics],
        datapath_area: Area,
        level: usize,
    ) -> Partition {
        debug_assert!(level <= self.levels, "level outside the evaluated grid");
        let l = self.l;
        let width = self.levels + 1;
        let all_sw_time: Cycles = metrics.iter().map(|m| m.sw_time).sum();

        let mut in_hw = vec![false; l];
        let mut runs = Vec::new();
        let mut comm_time = 0u64;
        let mut controller_area = 0u64;
        let mut i = l;
        let mut a = level;
        while i > 0 {
            let pick = self.choice[i * width + a];
            if pick == 0 {
                i -= 1;
            } else {
                let j = pick as usize; // 1-based start
                let e = self.run_off[j - 1] + (i - j);
                for b in in_hw.iter_mut().take(i).skip(j - 1) {
                    *b = true;
                }
                runs.push(j - 1..i);
                comm_time += self.run_comm[e];
                controller_area += self.run_ctl[e];
                a -= self.run_quanta[e];
                i = j - 1;
            }
        }
        runs.reverse();

        Partition {
            in_hw,
            total_time: Cycles::new(self.dp[l * width + level]),
            all_sw_time,
            comm_time: Cycles::new(comm_time),
            controller_area: Area::new(controller_area),
            datapath_area,
            runs,
        }
    }
}

/// Computes the cells `a0 .. a0 + dp_row.len()` of DP row `i`.
///
/// The run scan walks start positions `j` from `i` down to `1`, i.e.
/// runs ending at block `i-1` from shortest to longest. Both stopping
/// conditions are monotone in run length — a truncated table stays
/// truncated, and `run_quanta` is nondecreasing along a slab — so the
/// scan `break`s where the pre-optimisation core `continue`d.
#[allow(clippy::too_many_arguments)] // internal kernel of DpScratch::evaluate
fn dp_row_cells(
    i: usize,
    width: usize,
    a0: usize,
    done: &[u64],
    dp_row: &mut [u64],
    choice_row: &mut [u32],
    sw_prev: u64,
    run_off: &[usize],
    run_len: &[usize],
    run_time: &[u64],
    run_quanta: &[usize],
) {
    for (k, (cell, pick_cell)) in dp_row.iter_mut().zip(choice_row).enumerate() {
        let a = a0 + k;
        let mut best = done[(i - 1) * width + a].saturating_add(sw_prev);
        let mut pick = 0u32;
        for j in (1..=i).rev() {
            let idx = i - j; // offset into the slab of start j-1
            if run_len[j - 1] <= idx {
                break; // infeasible or over-budget block inside the run
            }
            let e = run_off[j - 1] + idx;
            let quanta = run_quanta[e];
            if quanta > a {
                break; // monotone: every longer run needs more quanta
            }
            let t = done[(j - 1) * width + (a - quanta)].saturating_add(run_time[e]);
            if t < best {
                best = t;
                pick = j as u32;
            }
        }
        *cell = best;
        *pick_cell = pick;
    }
}

/// Fixed lane width of [`dp_row_cells_lanes`]. Four `u64` accumulators
/// fill one 256-bit vector register; the manual unroll keeps the hot
/// loop autovectorisable on stable Rust without `std::simd`.
const LANES: usize = 4;

/// [`dp_row_cells`], processing the area axis in [`LANES`]-wide groups
/// over the flat SoA run tables, scalar tail included.
///
/// Bit-identical to the scalar kernel by construction: the `j` scan is
/// shared across the group, and because `run_quanta` is nondecreasing
/// along a slab, a lane whose budget `a` a run overflows stays
/// overflowed for every later (longer) run — exactly where the scalar
/// loop `break`s. Each lane therefore sees the same candidate
/// sequence, in the same order, under the same strict-`<` tie-break.
/// The group itself breaks only once the *largest* budget in it
/// overflows; lanes below it fall into the partial-range arm until
/// then. When `quanta <= a0k` every lane's `done` read is contiguous
/// (`a - quanta` shifts with the lane), which is the load the unroll
/// exists to coalesce.
#[allow(clippy::too_many_arguments)] // internal kernel of DpScratch::evaluate
fn dp_row_cells_lanes(
    i: usize,
    width: usize,
    a0: usize,
    done: &[u64],
    dp_row: &mut [u64],
    choice_row: &mut [u32],
    sw_prev: u64,
    run_off: &[usize],
    run_len: &[usize],
    run_time: &[u64],
    run_quanta: &[usize],
) {
    let n = dp_row.len();
    let mut k = 0usize;
    while k + LANES <= n {
        let a0k = a0 + k;
        let base = (i - 1) * width + a0k;
        let mut best = [0u64; LANES];
        for (l, b) in best.iter_mut().enumerate() {
            *b = done[base + l].saturating_add(sw_prev);
        }
        let mut pick = [0u32; LANES];
        for j in (1..=i).rev() {
            let idx = i - j;
            if run_len[j - 1] <= idx {
                break;
            }
            let e = run_off[j - 1] + idx;
            let quanta = run_quanta[e];
            if quanta > a0k + (LANES - 1) {
                break; // monotone: over even the group's largest budget
            }
            let rt = run_time[e];
            let row = (j - 1) * width;
            if quanta <= a0k {
                // All lanes active: one contiguous done load.
                let src = &done[row + (a0k - quanta)..][..LANES];
                for l in 0..LANES {
                    let t = src[l].saturating_add(rt);
                    if t < best[l] {
                        best[l] = t;
                        pick[l] = j as u32;
                    }
                }
            } else {
                // Low lanes over budget (and, by monotonicity, out for
                // the rest of the scan — as if the scalar loop broke).
                for l in (quanta - a0k)..LANES {
                    let t = done[row + (a0k + l - quanta)].saturating_add(rt);
                    if t < best[l] {
                        best[l] = t;
                        pick[l] = j as u32;
                    }
                }
            }
        }
        dp_row[k..k + LANES].copy_from_slice(&best);
        choice_row[k..k + LANES].copy_from_slice(&pick);
        k += LANES;
    }
    if k < n {
        dp_row_cells(
            i,
            width,
            a0 + k,
            done,
            &mut dp_row[k..],
            &mut choice_row[k..],
            sw_prev,
            run_off,
            run_len,
            run_time,
            run_quanta,
        );
    }
}

/// Runs PACE: partitions `bsbs` for the data path `allocation` within
/// `total_area` of hardware.
///
/// One-shot convenience over [`partition_with_scratch`]: a fresh
/// workspace is built per call. Hot loops — anything evaluating many
/// allocations — should hold a [`DpScratch`] (and a [`CommCosts`])
/// and use the reusable seams instead.
///
/// # Errors
///
/// * [`PaceError::DatapathTooLarge`] if the allocation alone exceeds
///   `total_area`.
/// * [`PaceError::Sched`] / [`PaceError::Hw`] if a block cannot be
///   scheduled at all.
///
/// # Examples
///
/// ```
/// use lycos_core::RMap;
/// use lycos_hwlib::{Area, HwLibrary};
/// use lycos_ir::{extract_bsbs, Cdfg, CdfgNode, DfgBuilder, OpKind, TripCount};
/// use lycos_pace::{partition, PaceConfig};
///
/// let mut b = DfgBuilder::new();
/// let m1 = b.binary(OpKind::Mul, "a".into(), "b".into());
/// b.assign("x", m1);
/// let m2 = b.binary(OpKind::Mul, "x".into(), "x".into());
/// b.assign("y", m2);
/// let cdfg = Cdfg::new(
///     "hot",
///     CdfgNode::Loop {
///         label: "l".into(),
///         test: None,
///         body: Box::new(CdfgNode::block("body", b.finish())),
///         trip: TripCount::Fixed(500),
///     },
/// );
/// let bsbs = extract_bsbs(&cdfg, None)?;
/// let lib = HwLibrary::standard();
/// let mult = lib.fu_for(OpKind::Mul).unwrap();
/// let alloc: RMap = [(mult, 1)].into_iter().collect();
///
/// let p = partition(&bsbs, &lib, &alloc, Area::new(4000), &PaceConfig::standard())?;
/// assert!(p.in_hw[0], "the hot block moves to hardware");
/// assert!(p.speedup_pct() > 100.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn partition(
    bsbs: &BsbArray,
    lib: &HwLibrary,
    allocation: &RMap,
    total_area: Area,
    config: &PaceConfig,
) -> Result<Partition, PaceError> {
    let mut scratch = DpScratch::new();
    partition_with_scratch(bsbs, lib, allocation, total_area, config, &mut scratch)
}

/// [`partition`] reusing a caller-owned [`DpScratch`] — identical
/// results, no steady-state DP allocations across calls. The scratch
/// may have served any other application or budget before.
///
/// # Errors
///
/// Same conditions as [`partition`].
pub fn partition_with_scratch(
    bsbs: &BsbArray,
    lib: &HwLibrary,
    allocation: &RMap,
    total_area: Area,
    config: &PaceConfig,
    scratch: &mut DpScratch,
) -> Result<Partition, PaceError> {
    let artifacts = SearchArtifacts::for_partition(bsbs, lib, config)?;
    partition_with_artifacts(
        bsbs, lib, allocation, total_area, config, scratch, &artifacts,
    )
}

/// [`partition_with_scratch`] over artifacts prepared (or fetched from
/// an [`ArtifactStore`](crate::ArtifactStore)) elsewhere: metrics
/// derive from the artifacts' statics and the run-traffic memo starts
/// from the artifacts' table. Results are identical to the compat
/// path; repeated calls over one application stop re-deriving the
/// per-block facts.
///
/// # Errors
///
/// Same conditions as [`partition`].
#[allow(clippy::too_many_arguments)] // the documented artifact seam
pub fn partition_with_artifacts(
    bsbs: &BsbArray,
    lib: &HwLibrary,
    allocation: &RMap,
    total_area: Area,
    config: &PaceConfig,
    scratch: &mut DpScratch,
    artifacts: &SearchArtifacts,
) -> Result<Partition, PaceError> {
    let datapath_area = allocation.area(lib);
    let ctl_budget = total_area
        .checked_sub(datapath_area)
        .ok_or(PaceError::DatapathTooLarge {
            datapath: datapath_area,
            total: total_area,
        })?;

    let metrics = artifacts.metrics(bsbs, lib, allocation, config)?;
    let mut comm = artifacts.comm_clone();
    Ok(partition_from_metrics(
        bsbs,
        &metrics,
        &mut comm,
        scratch,
        datapath_area,
        ctl_budget,
        config,
    ))
}

/// The PACE dynamic program over precomputed per-block metrics — the
/// seam the allocation-search engine drives: metrics come from its
/// memo cache ([`crate::MetricsCache`]), `comm` is shared across every
/// candidate (run traffic never depends on the allocation), and
/// `scratch` carries the DP tables from evaluation to evaluation.
///
/// `metrics` must hold one entry per block of `bsbs`, e.g. from
/// [`crate::compute_metrics`].
#[allow(clippy::too_many_arguments)] // the documented hot-path seam
pub fn partition_from_metrics(
    bsbs: &BsbArray,
    metrics: &[BsbMetrics],
    comm: &mut CommCosts,
    scratch: &mut DpScratch,
    datapath_area: Area,
    ctl_budget: Area,
    config: &PaceConfig,
) -> Partition {
    scratch.evaluate(bsbs, metrics, comm, ctl_budget, config);
    scratch.backtrack(metrics, datapath_area)
}

/// The pre-optimisation (PR 3) DP core, kept verbatim: fresh nested
/// `Vec` run tables per call, a `continue`-based run scan, and a
/// backtrack that re-queries the [`CommCosts`] memo. Not part of the
/// public API — it exists so equivalence tests can pin the optimised
/// core against the exact seed behaviour, and so the perf harness has
/// a real baseline to measure against.
#[doc(hidden)]
pub fn reference_partition_from_metrics(
    bsbs: &BsbArray,
    metrics: &[BsbMetrics],
    comm: &mut CommCosts,
    datapath_area: Area,
    ctl_budget: Area,
    config: &PaceConfig,
) -> Partition {
    let l = bsbs.len();
    let all_sw_time: Cycles = metrics.iter().map(|m| m.sw_time).sum();

    if l == 0 {
        return Partition {
            in_hw: Vec::new(),
            total_time: Cycles::ZERO,
            all_sw_time,
            comm_time: Cycles::ZERO,
            controller_area: Area::ZERO,
            datapath_area,
            runs: Vec::new(),
        };
    }

    let q = config.quantum;
    let levels = (ctl_budget.gates() / q) as usize;

    let feasible: Vec<bool> = metrics.iter().map(|m| m.hw_feasible()).collect();
    let mut run_time = vec![Vec::<u64>::new(); l];
    let mut run_quanta = vec![Vec::<usize>::new(); l];
    let mut run_ctl = vec![Vec::<u64>::new(); l];
    for j in 0..l {
        let mut hw_sum = 0u64;
        let mut ctl_sum = 0u64;
        for i in j..l {
            if !feasible[i] {
                break;
            }
            hw_sum += metrics[i].hw_time.expect("feasible").count();
            ctl_sum += metrics[i].controller_area.expect("feasible").gates();
            let comm = comm.cost(bsbs, &config.comm, j, i);
            run_time[j].push(hw_sum + comm);
            run_quanta[j].push(ctl_sum.div_ceil(q) as usize);
            run_ctl[j].push(ctl_sum);
        }
    }

    let width = levels + 1;
    let mut dp = vec![INF; (l + 1) * width];
    let mut choice = vec![0u32; (l + 1) * width];
    dp[..=levels].fill(0);
    for i in 1..=l {
        for a in 0..=levels {
            let mut best = dp[(i - 1) * width + a].saturating_add(metrics[i - 1].sw_time.count());
            let mut pick = 0u32;
            for j in (1..=i).rev() {
                let idx = i - j;
                if run_time[j - 1].len() <= idx {
                    break; // infeasible block inside the run
                }
                let quanta = run_quanta[j - 1][idx];
                if quanta > a {
                    continue;
                }
                let t = dp[(j - 1) * width + (a - quanta)].saturating_add(run_time[j - 1][idx]);
                if t < best {
                    best = t;
                    pick = j as u32;
                }
            }
            dp[i * width + a] = best;
            choice[i * width + a] = pick;
        }
    }

    let mut in_hw = vec![false; l];
    let mut runs = Vec::new();
    let mut comm_time = 0u64;
    let mut controller_area = 0u64;
    let mut i = l;
    let mut a = levels;
    while i > 0 {
        let pick = choice[i * width + a];
        if pick == 0 {
            i -= 1;
        } else {
            let j = pick as usize; // 1-based start
            let idx = i - j;
            for b in in_hw.iter_mut().take(i).skip(j - 1) {
                *b = true;
            }
            runs.push(j - 1..i);
            comm_time += comm.cost(bsbs, &config.comm, j - 1, i - 1);
            controller_area += run_ctl[j - 1][idx];
            a -= run_quanta[j - 1][idx];
            i = j - 1;
        }
    }
    runs.reverse();

    Partition {
        in_hw,
        total_time: Cycles::new(dp[l * width + levels]),
        all_sw_time,
        comm_time: Cycles::new(comm_time),
        controller_area: Area::new(controller_area),
        datapath_area,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute_metrics;
    use lycos_ir::{Bsb, BsbId, BsbOrigin, Dfg, OpKind};
    use std::collections::BTreeSet;

    fn lib() -> HwLibrary {
        HwLibrary::standard()
    }

    fn bsb_full(
        i: u32,
        kind: OpKind,
        n: usize,
        profile: u64,
        reads: &[&str],
        writes: &[&str],
    ) -> Bsb {
        let mut dfg = Dfg::new();
        for _ in 0..n {
            dfg.add_op(kind);
        }
        Bsb {
            id: BsbId(i),
            name: format!("b{i}"),
            dfg,
            reads: reads.iter().map(|s| s.to_string()).collect::<BTreeSet<_>>(),
            writes: writes
                .iter()
                .map(|s| s.to_string())
                .collect::<BTreeSet<_>>(),
            profile,
            origin: BsbOrigin::Body,
        }
    }

    fn alloc_of(pairs: &[(OpKind, u32)]) -> RMap {
        let lib = lib();
        pairs
            .iter()
            .map(|&(op, c)| (lib.fu_for(op).unwrap(), c))
            .collect()
    }

    /// The seed behaviour, end to end: fresh metrics and comm table per
    /// call, through the retained reference DP core.
    fn reference_partition(
        bsbs: &BsbArray,
        lib: &HwLibrary,
        allocation: &RMap,
        total_area: Area,
        config: &PaceConfig,
    ) -> Partition {
        let datapath_area = allocation.area(lib);
        let ctl_budget = total_area.checked_sub(datapath_area).expect("fits");
        let metrics = compute_metrics(bsbs, lib, allocation, config).unwrap();
        let mut comm = CommCosts::new(bsbs.len());
        reference_partition_from_metrics(
            bsbs,
            &metrics,
            &mut comm,
            datapath_area,
            ctl_budget,
            config,
        )
    }

    #[test]
    fn empty_allocation_keeps_everything_in_software() {
        let bsbs = BsbArray::from_bsbs("t", vec![bsb_full(0, OpKind::Add, 4, 100, &[], &[])]);
        let p = partition(
            &bsbs,
            &lib(),
            &RMap::new(),
            Area::new(10_000),
            &PaceConfig::standard(),
        )
        .unwrap();
        assert_eq!(p.hw_count(), 0);
        assert_eq!(p.total_time, p.all_sw_time);
        assert_eq!(p.speedup_pct(), 0.0);
        assert!(p.runs.is_empty());
    }

    #[test]
    fn hot_feasible_block_moves_to_hardware() {
        let bsbs = BsbArray::from_bsbs("t", vec![bsb_full(0, OpKind::Add, 4, 1000, &[], &[])]);
        let p = partition(
            &bsbs,
            &lib(),
            &alloc_of(&[(OpKind::Add, 4)]),
            Area::new(10_000),
            &PaceConfig::standard(),
        )
        .unwrap();
        assert!(p.in_hw[0]);
        // 4 adds × 6 cyc × 1000 = 24000 SW vs 1 step × 1000 HW.
        assert_eq!(p.all_sw_time, Cycles::new(24_000));
        assert!(p.total_time < Cycles::new(2_000));
        assert!(p.speedup_pct() > 1_000.0);
    }

    #[test]
    fn no_controller_room_means_no_hardware() {
        let bsbs = BsbArray::from_bsbs("t", vec![bsb_full(0, OpKind::Add, 4, 1000, &[], &[])]);
        let alloc = alloc_of(&[(OpKind::Add, 4)]);
        let lib = lib();
        let datapath = alloc.area(&lib);
        // Total area exactly the data path: zero controller budget.
        let p = partition(&bsbs, &lib, &alloc, datapath, &PaceConfig::standard()).unwrap();
        assert_eq!(p.hw_count(), 0, "controller does not fit");
    }

    #[test]
    fn datapath_larger_than_total_is_an_error() {
        let bsbs = BsbArray::from_bsbs("t", vec![bsb_full(0, OpKind::Add, 1, 1, &[], &[])]);
        let err = partition(
            &bsbs,
            &lib(),
            &alloc_of(&[(OpKind::Add, 1)]),
            Area::new(10),
            &PaceConfig::standard(),
        )
        .unwrap_err();
        assert!(matches!(err, PaceError::DatapathTooLarge { .. }));
    }

    #[test]
    fn area_budget_limits_how_many_blocks_move() {
        // Many hot blocks; controller budget fits only some.
        let blocks: Vec<Bsb> = (0..6)
            .map(|i| bsb_full(i, OpKind::Add, 4, 1000, &[], &[]))
            .collect();
        let bsbs = BsbArray::from_bsbs("t", blocks);
        let lib = lib();
        let alloc = alloc_of(&[(OpKind::Add, 4)]);
        let dp_area = alloc.area(&lib);
        let cfg = PaceConfig::standard();
        // Each controller: 1 state → ECA(1) = 96 GE. A merged run of k
        // controllers costs 96k GE rounded up to 16-GE quanta (= 6k
        // quanta). 18 quanta = 288 GE: three controllers fit (288),
        // four (384) do not.
        let budget = Area::new(dp_area.gates() + 18 * cfg.quantum);
        let p = partition(&bsbs, &lib, &alloc, budget, &cfg).unwrap();
        assert_eq!(p.hw_count(), 3, "exactly three controllers fit");
        // And with a huge budget all six move.
        let p = partition(&bsbs, &lib, &alloc, Area::new(100_000), &cfg).unwrap();
        assert_eq!(p.hw_count(), 6);
    }

    #[test]
    fn infeasible_blocks_stay_in_software() {
        // Block 1 needs a divider the allocation lacks.
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![
                bsb_full(0, OpKind::Add, 4, 100, &[], &[]),
                bsb_full(1, OpKind::Div, 2, 100, &[], &[]),
            ],
        );
        let p = partition(
            &bsbs,
            &lib(),
            &alloc_of(&[(OpKind::Add, 4)]),
            Area::new(10_000),
            &PaceConfig::standard(),
        )
        .unwrap();
        assert!(p.in_hw[0]);
        assert!(!p.in_hw[1]);
    }

    #[test]
    fn adjacent_blocks_merge_into_one_run() {
        // Chain of data through three hot blocks: one run, intra-run
        // traffic free.
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![
                bsb_full(0, OpKind::Add, 3, 500, &["a"], &["x"]),
                bsb_full(1, OpKind::Add, 3, 500, &["x"], &["y"]),
                bsb_full(2, OpKind::Add, 3, 500, &["y"], &["z"]),
            ],
        );
        let p = partition(
            &bsbs,
            &lib(),
            &alloc_of(&[(OpKind::Add, 3)]),
            Area::new(10_000),
            &PaceConfig::standard(),
        )
        .unwrap();
        assert_eq!(p.hw_count(), 3);
        assert_eq!(p.runs.len(), 1, "one maximal run");
        assert_eq!(p.runs[0], 0..3);
    }

    #[test]
    fn communication_can_keep_a_block_in_software() {
        // A lukewarm block whose inputs change every execution: the bus
        // cost exceeds the modest compute gain.
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![
                // Producer in software (cheap, cold): writes 8 vars.
                bsb_full(0, OpKind::Add, 1, 1000, &[], &["v0"]),
                // Consumer: reads the fresh value each time; tiny gain.
                bsb_full(1, OpKind::Add, 2, 1000, &["v0"], &["w"]),
                // Final reader keeps w live.
                bsb_full(2, OpKind::Add, 1, 1000, &["w"], &[]),
            ],
        );
        let lib = lib();
        // Only allow moving the middle block: SW 2×6 = 12/exec,
        // HW 1 step + comm in 14 + out 14 per exec — not worth it.
        let alloc = alloc_of(&[(OpKind::Add, 2)]);
        let p = partition(
            &bsbs,
            &lib,
            &alloc,
            Area::new(1_000),
            &PaceConfig::standard(),
        )
        .unwrap();
        // Moving all three is better than moving just the middle one;
        // but with a budget that fits only one controller the middle
        // block alone must NOT move.
        let dp = alloc.area(&lib);
        let tight = partition(
            &bsbs,
            &lib,
            &alloc,
            Area::new(dp.gates() + 16),
            &PaceConfig::standard(),
        )
        .unwrap();
        assert!(
            !tight.in_hw[1] || tight.comm_time.count() == 0,
            "middle block alone should not pay the bus"
        );
        let _ = p;
    }

    #[test]
    fn partition_accounting_is_consistent() {
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![
                bsb_full(0, OpKind::Add, 3, 100, &["a"], &["x"]),
                bsb_full(1, OpKind::Mul, 2, 900, &["x"], &["y"]),
                bsb_full(2, OpKind::Add, 1, 10, &["y"], &["z"]),
            ],
        );
        let lib = lib();
        let alloc = alloc_of(&[(OpKind::Add, 3), (OpKind::Mul, 2)]);
        let p = partition(
            &bsbs,
            &lib,
            &alloc,
            Area::new(20_000),
            &PaceConfig::standard(),
        )
        .unwrap();
        assert_eq!(p.datapath_area, alloc.area(&lib));
        assert!(p.total_time <= p.all_sw_time, "DP never loses to all-SW");
        assert!(p.comm_time <= p.total_time);
        let in_runs: usize = p.runs.iter().map(|r| r.len()).sum();
        assert_eq!(in_runs, p.hw_count());
        assert!((0.0..=1.0).contains(&p.size_fraction()));
        assert!((0.0..=1.0).contains(&p.hw_fraction_static(&bsbs)));
    }

    #[test]
    fn empty_application_partitions_trivially() {
        let bsbs = BsbArray::from_bsbs("t", vec![]);
        let p = partition(
            &bsbs,
            &lib(),
            &RMap::new(),
            Area::new(1_000),
            &PaceConfig::standard(),
        )
        .unwrap();
        assert_eq!(p.total_time, Cycles::ZERO);
        assert_eq!(p.speedup_pct(), 0.0);
    }

    #[test]
    fn dp_beats_or_matches_all_software_everywhere() {
        // Randomised-ish structure, several budgets.
        let blocks: Vec<Bsb> = (0..8)
            .map(|i| {
                let kind = match i % 3 {
                    0 => OpKind::Add,
                    1 => OpKind::Mul,
                    _ => OpKind::Sub,
                };
                bsb_full(i, kind, 1 + (i as usize % 4), 10 * (i as u64 + 1), &[], &[])
            })
            .collect();
        let bsbs = BsbArray::from_bsbs("t", blocks);
        let alloc = alloc_of(&[(OpKind::Add, 2), (OpKind::Mul, 1), (OpKind::Sub, 1)]);
        let lib = lib();
        let dp_area = alloc.area(&lib).gates();
        for extra in [0u64, 50, 200, 1_000, 10_000] {
            let p = partition(
                &bsbs,
                &lib,
                &alloc,
                Area::new(dp_area + extra),
                &PaceConfig::standard(),
            )
            .unwrap();
            assert!(p.total_time <= p.all_sw_time, "budget +{extra}");
        }
    }

    /// A mix of shapes the reuse/pruning/parallel tests sweep over:
    /// feasible and infeasible blocks, chained traffic, hot and cold
    /// profiles.
    fn zoo() -> Vec<(BsbArray, RMap)> {
        vec![
            (
                BsbArray::from_bsbs("one", vec![bsb_full(0, OpKind::Add, 4, 1000, &[], &[])]),
                alloc_of(&[(OpKind::Add, 4)]),
            ),
            (
                BsbArray::from_bsbs(
                    "chain",
                    vec![
                        bsb_full(0, OpKind::Add, 3, 500, &["a"], &["x"]),
                        bsb_full(1, OpKind::Mul, 2, 700, &["x"], &["y"]),
                        bsb_full(2, OpKind::Add, 2, 90, &["y"], &["z"]),
                        bsb_full(3, OpKind::Div, 1, 40, &["z"], &["w"]),
                    ],
                ),
                alloc_of(&[(OpKind::Add, 3), (OpKind::Mul, 1)]),
            ),
            (
                BsbArray::from_bsbs(
                    "wide",
                    (0..9)
                        .map(|i| {
                            bsb_full(
                                i,
                                OpKind::Add,
                                1 + (i as usize % 3),
                                10 * (i as u64 + 1),
                                &[],
                                &[],
                            )
                        })
                        .collect(),
                ),
                alloc_of(&[(OpKind::Add, 3)]),
            ),
        ]
    }

    #[test]
    fn new_core_matches_the_reference_everywhere() {
        // The optimised core (scratch reuse, truncated tables, break
        // scan) against the retained seed core, across shapes and
        // budgets — including budgets tight enough that most runs are
        // never materialised.
        let lib = lib();
        let cfg = PaceConfig::standard();
        let mut scratch = DpScratch::new();
        for (bsbs, alloc) in zoo() {
            let dp_gates = alloc.area(&lib).gates();
            for extra in [0u64, 16, 100, 300, 1_000, 10_000] {
                let total = Area::new(dp_gates + extra);
                let seed = reference_partition(&bsbs, &lib, &alloc, total, &cfg);
                let new =
                    partition_with_scratch(&bsbs, &lib, &alloc, total, &cfg, &mut scratch).unwrap();
                assert_eq!(new, seed, "{} +{extra}", bsbs.app_name());
            }
        }
    }

    #[test]
    fn scratch_reuse_is_invisible_across_apps_and_budgets() {
        // One scratch, interleaved across applications of different
        // sizes and budgets of different level counts: identical to a
        // fresh partition every time.
        let lib = lib();
        let cfg = PaceConfig::standard();
        let mut scratch = DpScratch::new();
        for round in 0..3 {
            for (bsbs, alloc) in zoo() {
                let total = Area::new(alloc.area(&lib).gates() + 400 * (round + 1));
                let fresh = partition(&bsbs, &lib, &alloc, total, &cfg).unwrap();
                let reused =
                    partition_with_scratch(&bsbs, &lib, &alloc, total, &cfg, &mut scratch).unwrap();
                assert_eq!(reused, fresh, "{} round {round}", bsbs.app_name());
            }
        }
    }

    #[test]
    fn monotone_break_matches_the_continue_scan_on_a_quanta_plateau() {
        // A giant quantum makes every run of 1..=6 blocks cost exactly
        // one quantum — a plateau where the old scan `continue`d over
        // equal values and the new scan must keep scanning too (it may
        // only break on *strictly* greater quanta). A wrong `>=` break
        // would miss the longer, communication-free runs.
        let bsbs = BsbArray::from_bsbs(
            "plateau",
            vec![
                bsb_full(0, OpKind::Add, 2, 400, &["in"], &["a"]),
                bsb_full(1, OpKind::Add, 2, 400, &["a"], &["b"]),
                bsb_full(2, OpKind::Add, 2, 400, &["b"], &["c"]),
                bsb_full(3, OpKind::Add, 2, 400, &["c"], &["d"]),
                bsb_full(4, OpKind::Add, 2, 400, &["d"], &["e"]),
                bsb_full(5, OpKind::Add, 2, 400, &["e"], &["out"]),
            ],
        );
        let lib = lib();
        let alloc = alloc_of(&[(OpKind::Add, 2)]);
        let cfg = PaceConfig {
            quantum: 4_096, // ECA(1..6 controllers) all round up to 1 quantum
            ..PaceConfig::standard()
        };
        let dp_gates = alloc.area(&lib).gates();
        let mut scratch = DpScratch::new();
        for extra_quanta in [1u64, 2, 3] {
            let total = Area::new(dp_gates + extra_quanta * cfg.quantum);
            let metrics = compute_metrics(&bsbs, &lib, &alloc, &cfg).unwrap();
            let ctl = total.checked_sub(alloc.area(&lib)).unwrap();
            let mut comm_ref = CommCosts::new(bsbs.len());
            let seed = reference_partition_from_metrics(
                &bsbs,
                &metrics,
                &mut comm_ref,
                alloc.area(&lib),
                ctl,
                &cfg,
            );
            let mut comm_new = CommCosts::new(bsbs.len());
            let new = partition_from_metrics(
                &bsbs,
                &metrics,
                &mut comm_new,
                &mut scratch,
                alloc.area(&lib),
                ctl,
                &cfg,
            );
            assert_eq!(new, seed, "+{extra_quanta} quanta");
            // The plateau really is exercised: one quantum admits the
            // full six-block run, whose intra-run traffic is free.
            if extra_quanta == 1 {
                assert_eq!(new.runs, vec![0..6], "whole chain in one run");
                assert_eq!(new.comm_time, seed.comm_time);
            }
        }
    }

    #[test]
    fn over_budget_runs_are_never_materialised() {
        // Six hot blocks but room for three controllers: the run slabs
        // must stop at the first run over the level budget instead of
        // materialising all O(L²) entries.
        let blocks: Vec<Bsb> = (0..6)
            .map(|i| bsb_full(i, OpKind::Add, 4, 1000, &[], &[]))
            .collect();
        let bsbs = BsbArray::from_bsbs("t", blocks);
        let lib = lib();
        let alloc = alloc_of(&[(OpKind::Add, 4)]);
        let cfg = PaceConfig::standard();
        let metrics = compute_metrics(&bsbs, &lib, &alloc, &cfg).unwrap();
        let ctl = Area::new(18 * cfg.quantum); // three 6-quanta controllers
        let mut comm = CommCosts::new(bsbs.len());
        let mut scratch = DpScratch::new();
        let time = scratch.evaluate(&bsbs, &metrics, &mut comm, ctl, &cfg);
        assert!(time < u64::MAX / 8);
        // Every slab holds at most 3 runs (4+ controllers > 18 quanta),
        // and the result still matches the reference.
        assert!(
            scratch.run_len.iter().all(|&n| n <= 3),
            "{:?}",
            scratch.run_len
        );
        let new = scratch.backtrack(&metrics, alloc.area(&lib));
        let mut comm_ref = CommCosts::new(bsbs.len());
        let seed = reference_partition_from_metrics(
            &bsbs,
            &metrics,
            &mut comm_ref,
            alloc.area(&lib),
            ctl,
            &cfg,
        );
        assert_eq!(new, seed);
        assert_eq!(new.hw_count(), 3);
    }

    #[test]
    fn parallel_rows_match_sequential_on_wide_budgets() {
        // Budgets wide enough (thousands of levels, so each worker's
        // chunk clears DP_PAR_MIN_CELLS) that the row split actually
        // engages, across several worker counts including the auto
        // setting.
        let lib = lib();
        let cfg = PaceConfig::standard();
        for (bsbs, alloc) in zoo() {
            let total = Area::new(alloc.area(&lib).gates() + 140_000); // 8750 levels
            let fresh = partition(&bsbs, &lib, &alloc, total, &cfg).unwrap();
            for dp_threads in [0usize, 2, 5] {
                let mut scratch = DpScratch::with_dp_threads(dp_threads);
                let par =
                    partition_with_scratch(&bsbs, &lib, &alloc, total, &cfg, &mut scratch).unwrap();
                assert_eq!(par, fresh, "{} dp_threads={dp_threads}", bsbs.app_name());
            }
        }
        // The split genuinely engages for multi-worker settings on a
        // row wide enough to feed them, and genuinely does not on rows
        // where a chunk could not amortise its per-row spawn.
        let s = DpScratch::with_dp_threads(4);
        assert_eq!(s.effective_dp_workers(4 * DP_PAR_MIN_CELLS), 4);
        assert_eq!(s.effective_dp_workers(8_751), 2);
        assert_eq!(s.effective_dp_workers(2_501), 1);
        assert_eq!(s.effective_dp_workers(63), 1);
        assert_eq!(DpScratch::new().dp_threads(), 1);
    }

    #[test]
    fn lane_chunked_scan_is_bit_identical_to_scalar() {
        // Not just the same partition: the full dp/choice grids must
        // match cell for cell, across row widths that exercise whole
        // lane groups, the partial-lane arm (tight budgets where
        // `quanta > a0k` mid-group) and the scalar tail (widths not a
        // multiple of LANES).
        let lib = lib();
        let cfg = PaceConfig::standard();
        for (bsbs, alloc) in zoo() {
            let dp_gates = alloc.area(&lib).gates();
            for extra in [0u64, 16, 33, 100, 307, 1_000, 10_000] {
                let total = Area::new(dp_gates + extra);
                let metrics = compute_metrics(&bsbs, &lib, &alloc, &cfg).unwrap();
                let ctl = total.checked_sub(alloc.area(&lib)).unwrap();

                let mut lanes = DpScratch::new();
                assert!(lanes.simd(), "lane chunking is the default");
                let mut scalar = DpScratch::new();
                scalar.set_simd(false);

                let mut comm_a = CommCosts::new(bsbs.len());
                let ta = lanes.evaluate(&bsbs, &metrics, &mut comm_a, ctl, &cfg);
                let mut comm_b = CommCosts::new(bsbs.len());
                let tb = scalar.evaluate(&bsbs, &metrics, &mut comm_b, ctl, &cfg);
                assert_eq!(ta, tb, "{} +{extra}", bsbs.app_name());
                let need = (lanes.l + 1) * (lanes.levels + 1);
                assert_eq!(
                    lanes.dp[..need],
                    scalar.dp[..need],
                    "{} +{extra}: dp grid diverged",
                    bsbs.app_name()
                );
                assert_eq!(
                    lanes.choice[..need],
                    scalar.choice[..need],
                    "{} +{extra}: choice grid diverged",
                    bsbs.app_name()
                );
                assert_eq!(
                    lanes.backtrack(&metrics, alloc.area(&lib)),
                    scalar.backtrack(&metrics, alloc.area(&lib)),
                );
            }
        }
    }

    #[test]
    fn lane_chunked_scan_survives_the_row_split() {
        // simd × dp_threads: the parallel row chunks start at arbitrary
        // a0 offsets, so lane groups straddle chunk-local alignments.
        let lib = lib();
        let cfg = PaceConfig::standard();
        for (bsbs, alloc) in zoo() {
            let total = Area::new(alloc.area(&lib).gates() + 140_000);
            let mut scalar = DpScratch::new();
            scalar.set_simd(false);
            let seed =
                partition_with_scratch(&bsbs, &lib, &alloc, total, &cfg, &mut scalar).unwrap();
            for dp_threads in [1usize, 2, 5] {
                let mut scratch = DpScratch::with_dp_threads(dp_threads);
                let par =
                    partition_with_scratch(&bsbs, &lib, &alloc, total, &cfg, &mut scratch).unwrap();
                assert_eq!(par, seed, "{} dp_threads={dp_threads}", bsbs.app_name());
            }
        }
    }

    #[test]
    fn simd_toggle_round_trips() {
        let mut s = DpScratch::with_dp_threads(3);
        assert!(s.simd(), "every constructor defaults the lanes on");
        s.set_simd(false);
        assert!(!s.simd());
        s.set_simd(true);
        assert!(s.simd());
    }
}
