//! The PACE dynamic-programming partitioner (Knudsen & Madsen, Codes/
//! CASHE '96 — reference [7] of the paper).
//!
//! Given a fixed data-path allocation, PACE chooses which BSBs to move
//! to hardware so that total execution time is minimal under the area
//! left for controllers. The DP walks the BSB sequence once per area
//! level; a block either stays in software, or closes a *run* of
//! adjacent hardware blocks `[j, i]`. Runs matter because adjacent
//! hardware blocks communicate for free — this is PACE's "inclusion of
//! adjacent sequences".
//!
//! Controller areas are the realistic, list-schedule-based figures from
//! [`crate::compute_metrics`], so a partition produced here reflects
//! what the synthesised system would actually cost (§5.1).

use crate::metrics::BsbMetrics;
use crate::{compute_metrics, CommCosts, PaceConfig, PaceError};
use lycos_core::RMap;
use lycos_hwlib::{Area, Cycles, HwLibrary};
use lycos_ir::BsbArray;
use std::ops::Range;

/// A hardware/software partition and its cost breakdown.
#[derive(Clone, PartialEq, Debug)]
pub struct Partition {
    /// Block placement: `true` = hardware.
    pub in_hw: Vec<bool>,
    /// Total execution time of the partitioned system, communication
    /// included.
    pub total_time: Cycles,
    /// Execution time of the all-software solution.
    pub all_sw_time: Cycles,
    /// Bus time included in `total_time`.
    pub comm_time: Cycles,
    /// Exact (unquantised) controller area of the hardware blocks.
    pub controller_area: Area,
    /// Data-path area of the allocation this partition was built for.
    pub datapath_area: Area,
    /// The maximal hardware runs, in order.
    pub runs: Vec<Range<usize>>,
}

impl Partition {
    /// The paper's speed-up figure: the decrease in execution time from
    /// the all-software solution, as a percentage of the hybrid time —
    /// `(T_sw − T_hybrid) / T_hybrid × 100`.
    pub fn speedup_pct(&self) -> f64 {
        if self.total_time.count() == 0 {
            return 0.0;
        }
        (self.all_sw_time.count() as f64 - self.total_time.count() as f64)
            / self.total_time.count() as f64
            * 100.0
    }

    /// Number of blocks in hardware.
    pub fn hw_count(&self) -> usize {
        self.in_hw.iter().filter(|&&h| h).count()
    }

    /// Static fraction of blocks in hardware (`HW` of Table 1's HW/SW
    /// column, by operation count).
    pub fn hw_fraction_static(&self, bsbs: &BsbArray) -> f64 {
        let total: usize = bsbs.total_ops();
        if total == 0 {
            return 0.0;
        }
        let hw: usize = bsbs
            .iter()
            .zip(&self.in_hw)
            .filter(|&(_, &h)| h)
            .map(|(b, _)| b.op_count())
            .sum();
        hw as f64 / total as f64
    }

    /// Data-path share of the used hardware area (Table 1's *Size*):
    /// `datapath / (datapath + controllers)`.
    pub fn size_fraction(&self) -> f64 {
        self.datapath_area
            .fraction_of(self.datapath_area + self.controller_area)
    }
}

/// Runs PACE: partitions `bsbs` for the data path `allocation` within
/// `total_area` of hardware.
///
/// # Errors
///
/// * [`PaceError::DatapathTooLarge`] if the allocation alone exceeds
///   `total_area`.
/// * [`PaceError::Sched`] / [`PaceError::Hw`] if a block cannot be
///   scheduled at all.
///
/// # Examples
///
/// ```
/// use lycos_core::RMap;
/// use lycos_hwlib::{Area, HwLibrary};
/// use lycos_ir::{extract_bsbs, Cdfg, CdfgNode, DfgBuilder, OpKind, TripCount};
/// use lycos_pace::{partition, PaceConfig};
///
/// let mut b = DfgBuilder::new();
/// let m1 = b.binary(OpKind::Mul, "a".into(), "b".into());
/// b.assign("x", m1);
/// let m2 = b.binary(OpKind::Mul, "x".into(), "x".into());
/// b.assign("y", m2);
/// let cdfg = Cdfg::new(
///     "hot",
///     CdfgNode::Loop {
///         label: "l".into(),
///         test: None,
///         body: Box::new(CdfgNode::block("body", b.finish())),
///         trip: TripCount::Fixed(500),
///     },
/// );
/// let bsbs = extract_bsbs(&cdfg, None)?;
/// let lib = HwLibrary::standard();
/// let mult = lib.fu_for(OpKind::Mul).unwrap();
/// let alloc: RMap = [(mult, 1)].into_iter().collect();
///
/// let p = partition(&bsbs, &lib, &alloc, Area::new(4000), &PaceConfig::standard())?;
/// assert!(p.in_hw[0], "the hot block moves to hardware");
/// assert!(p.speedup_pct() > 100.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn partition(
    bsbs: &BsbArray,
    lib: &HwLibrary,
    allocation: &RMap,
    total_area: Area,
    config: &PaceConfig,
) -> Result<Partition, PaceError> {
    let datapath_area = allocation.area(lib);
    let ctl_budget = total_area
        .checked_sub(datapath_area)
        .ok_or(PaceError::DatapathTooLarge {
            datapath: datapath_area,
            total: total_area,
        })?;

    let metrics = compute_metrics(bsbs, lib, allocation, config)?;
    let mut comm = CommCosts::new(bsbs.len());
    Ok(partition_from_metrics(
        bsbs,
        &metrics,
        &mut comm,
        datapath_area,
        ctl_budget,
        config,
    ))
}

/// The PACE dynamic program over precomputed per-block metrics — the
/// seam the allocation-search engine drives: metrics come from its
/// memo cache and `comm` is shared across every candidate (run traffic
/// never depends on the allocation).
pub(crate) fn partition_from_metrics(
    bsbs: &BsbArray,
    metrics: &[BsbMetrics],
    comm: &mut CommCosts,
    datapath_area: Area,
    ctl_budget: Area,
    config: &PaceConfig,
) -> Partition {
    let l = bsbs.len();
    let all_sw_time: Cycles = metrics.iter().map(|m| m.sw_time).sum();

    if l == 0 {
        return Partition {
            in_hw: Vec::new(),
            total_time: Cycles::ZERO,
            all_sw_time,
            comm_time: Cycles::ZERO,
            controller_area: Area::ZERO,
            datapath_area,
            runs: Vec::new(),
        };
    }

    let q = config.quantum;
    let levels = (ctl_budget.gates() / q) as usize;

    // Per-run cost tables. run[j][i] covers blocks j..=i (only feasible
    // prefixes are materialised).
    // quanta(j,i) = ceil(Σ ctl / q); time(j,i) = Σ hw + comm.
    let feasible: Vec<bool> = metrics.iter().map(|m| m.hw_feasible()).collect();
    let mut run_time = vec![Vec::<u64>::new(); l];
    let mut run_quanta = vec![Vec::<usize>::new(); l];
    let mut run_ctl = vec![Vec::<u64>::new(); l];
    for j in 0..l {
        let mut hw_sum = 0u64;
        let mut ctl_sum = 0u64;
        for i in j..l {
            if !feasible[i] {
                break;
            }
            hw_sum += metrics[i].hw_time.expect("feasible").count();
            ctl_sum += metrics[i].controller_area.expect("feasible").gates();
            let comm = comm.cost(bsbs, &config.comm, j, i);
            run_time[j].push(hw_sum + comm);
            run_quanta[j].push(ctl_sum.div_ceil(q) as usize);
            run_ctl[j].push(ctl_sum);
        }
    }

    // dp[i][a]: min time for blocks 0..i with ≤ a quanta of controller.
    // choice: 0 = block i-1 in software; j+1 = hardware run j..=i-1.
    const INF: u64 = u64::MAX / 4;
    let width = levels + 1;
    let mut dp = vec![INF; (l + 1) * width];
    let mut choice = vec![0u32; (l + 1) * width];
    dp[..=levels].fill(0);
    for i in 1..=l {
        for a in 0..=levels {
            let mut best = dp[(i - 1) * width + a].saturating_add(metrics[i - 1].sw_time.count());
            let mut pick = 0u32;
            // Runs ending at block i-1, starting at j-1 (1-based j).
            for j in (1..=i).rev() {
                let idx = i - j; // offset into run_*[j-1]
                if run_time[j - 1].len() <= idx {
                    break; // infeasible block inside the run
                }
                let quanta = run_quanta[j - 1][idx];
                if quanta > a {
                    continue;
                }
                let t = dp[(j - 1) * width + (a - quanta)].saturating_add(run_time[j - 1][idx]);
                if t < best {
                    best = t;
                    pick = j as u32;
                }
            }
            dp[i * width + a] = best;
            choice[i * width + a] = pick;
        }
    }

    // Backtrack from (l, levels).
    let mut in_hw = vec![false; l];
    let mut runs = Vec::new();
    let mut comm_time = 0u64;
    let mut controller_area = 0u64;
    let mut i = l;
    let mut a = levels;
    while i > 0 {
        let pick = choice[i * width + a];
        if pick == 0 {
            i -= 1;
        } else {
            let j = pick as usize; // 1-based start
            let idx = i - j;
            for b in in_hw.iter_mut().take(i).skip(j - 1) {
                *b = true;
            }
            runs.push(j - 1..i);
            comm_time += comm.cost(bsbs, &config.comm, j - 1, i - 1);
            controller_area += run_ctl[j - 1][idx];
            a -= run_quanta[j - 1][idx];
            i = j - 1;
        }
    }
    runs.reverse();

    Partition {
        in_hw,
        total_time: Cycles::new(dp[l * width + levels]),
        all_sw_time,
        comm_time: Cycles::new(comm_time),
        controller_area: Area::new(controller_area),
        datapath_area,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lycos_ir::{Bsb, BsbId, BsbOrigin, Dfg, OpKind};
    use std::collections::BTreeSet;

    fn lib() -> HwLibrary {
        HwLibrary::standard()
    }

    fn bsb_full(
        i: u32,
        kind: OpKind,
        n: usize,
        profile: u64,
        reads: &[&str],
        writes: &[&str],
    ) -> Bsb {
        let mut dfg = Dfg::new();
        for _ in 0..n {
            dfg.add_op(kind);
        }
        Bsb {
            id: BsbId(i),
            name: format!("b{i}"),
            dfg,
            reads: reads.iter().map(|s| s.to_string()).collect::<BTreeSet<_>>(),
            writes: writes
                .iter()
                .map(|s| s.to_string())
                .collect::<BTreeSet<_>>(),
            profile,
            origin: BsbOrigin::Body,
        }
    }

    fn alloc_of(pairs: &[(OpKind, u32)]) -> RMap {
        let lib = lib();
        pairs
            .iter()
            .map(|&(op, c)| (lib.fu_for(op).unwrap(), c))
            .collect()
    }

    #[test]
    fn empty_allocation_keeps_everything_in_software() {
        let bsbs = BsbArray::from_bsbs("t", vec![bsb_full(0, OpKind::Add, 4, 100, &[], &[])]);
        let p = partition(
            &bsbs,
            &lib(),
            &RMap::new(),
            Area::new(10_000),
            &PaceConfig::standard(),
        )
        .unwrap();
        assert_eq!(p.hw_count(), 0);
        assert_eq!(p.total_time, p.all_sw_time);
        assert_eq!(p.speedup_pct(), 0.0);
        assert!(p.runs.is_empty());
    }

    #[test]
    fn hot_feasible_block_moves_to_hardware() {
        let bsbs = BsbArray::from_bsbs("t", vec![bsb_full(0, OpKind::Add, 4, 1000, &[], &[])]);
        let p = partition(
            &bsbs,
            &lib(),
            &alloc_of(&[(OpKind::Add, 4)]),
            Area::new(10_000),
            &PaceConfig::standard(),
        )
        .unwrap();
        assert!(p.in_hw[0]);
        // 4 adds × 6 cyc × 1000 = 24000 SW vs 1 step × 1000 HW.
        assert_eq!(p.all_sw_time, Cycles::new(24_000));
        assert!(p.total_time < Cycles::new(2_000));
        assert!(p.speedup_pct() > 1_000.0);
    }

    #[test]
    fn no_controller_room_means_no_hardware() {
        let bsbs = BsbArray::from_bsbs("t", vec![bsb_full(0, OpKind::Add, 4, 1000, &[], &[])]);
        let alloc = alloc_of(&[(OpKind::Add, 4)]);
        let lib = lib();
        let datapath = alloc.area(&lib);
        // Total area exactly the data path: zero controller budget.
        let p = partition(&bsbs, &lib, &alloc, datapath, &PaceConfig::standard()).unwrap();
        assert_eq!(p.hw_count(), 0, "controller does not fit");
    }

    #[test]
    fn datapath_larger_than_total_is_an_error() {
        let bsbs = BsbArray::from_bsbs("t", vec![bsb_full(0, OpKind::Add, 1, 1, &[], &[])]);
        let err = partition(
            &bsbs,
            &lib(),
            &alloc_of(&[(OpKind::Add, 1)]),
            Area::new(10),
            &PaceConfig::standard(),
        )
        .unwrap_err();
        assert!(matches!(err, PaceError::DatapathTooLarge { .. }));
    }

    #[test]
    fn area_budget_limits_how_many_blocks_move() {
        // Many hot blocks; controller budget fits only some.
        let blocks: Vec<Bsb> = (0..6)
            .map(|i| bsb_full(i, OpKind::Add, 4, 1000, &[], &[]))
            .collect();
        let bsbs = BsbArray::from_bsbs("t", blocks);
        let lib = lib();
        let alloc = alloc_of(&[(OpKind::Add, 4)]);
        let dp_area = alloc.area(&lib);
        let cfg = PaceConfig::standard();
        // Each controller: 1 state → ECA(1) = 96 GE. A merged run of k
        // controllers costs 96k GE rounded up to 16-GE quanta (= 6k
        // quanta). 18 quanta = 288 GE: three controllers fit (288),
        // four (384) do not.
        let budget = Area::new(dp_area.gates() + 18 * cfg.quantum);
        let p = partition(&bsbs, &lib, &alloc, budget, &cfg).unwrap();
        assert_eq!(p.hw_count(), 3, "exactly three controllers fit");
        // And with a huge budget all six move.
        let p = partition(&bsbs, &lib, &alloc, Area::new(100_000), &cfg).unwrap();
        assert_eq!(p.hw_count(), 6);
    }

    #[test]
    fn infeasible_blocks_stay_in_software() {
        // Block 1 needs a divider the allocation lacks.
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![
                bsb_full(0, OpKind::Add, 4, 100, &[], &[]),
                bsb_full(1, OpKind::Div, 2, 100, &[], &[]),
            ],
        );
        let p = partition(
            &bsbs,
            &lib(),
            &alloc_of(&[(OpKind::Add, 4)]),
            Area::new(10_000),
            &PaceConfig::standard(),
        )
        .unwrap();
        assert!(p.in_hw[0]);
        assert!(!p.in_hw[1]);
    }

    #[test]
    fn adjacent_blocks_merge_into_one_run() {
        // Chain of data through three hot blocks: one run, intra-run
        // traffic free.
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![
                bsb_full(0, OpKind::Add, 3, 500, &["a"], &["x"]),
                bsb_full(1, OpKind::Add, 3, 500, &["x"], &["y"]),
                bsb_full(2, OpKind::Add, 3, 500, &["y"], &["z"]),
            ],
        );
        let p = partition(
            &bsbs,
            &lib(),
            &alloc_of(&[(OpKind::Add, 3)]),
            Area::new(10_000),
            &PaceConfig::standard(),
        )
        .unwrap();
        assert_eq!(p.hw_count(), 3);
        assert_eq!(p.runs.len(), 1, "one maximal run");
        assert_eq!(p.runs[0], 0..3);
    }

    #[test]
    fn communication_can_keep_a_block_in_software() {
        // A lukewarm block whose inputs change every execution: the bus
        // cost exceeds the modest compute gain.
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![
                // Producer in software (cheap, cold): writes 8 vars.
                bsb_full(0, OpKind::Add, 1, 1000, &[], &["v0"]),
                // Consumer: reads the fresh value each time; tiny gain.
                bsb_full(1, OpKind::Add, 2, 1000, &["v0"], &["w"]),
                // Final reader keeps w live.
                bsb_full(2, OpKind::Add, 1, 1000, &["w"], &[]),
            ],
        );
        let lib = lib();
        // Only allow moving the middle block: SW 2×6 = 12/exec,
        // HW 1 step + comm in 14 + out 14 per exec — not worth it.
        let alloc = alloc_of(&[(OpKind::Add, 2)]);
        let p = partition(
            &bsbs,
            &lib,
            &alloc,
            Area::new(1_000),
            &PaceConfig::standard(),
        )
        .unwrap();
        // Moving all three is better than moving just the middle one;
        // but with a budget that fits only one controller the middle
        // block alone must NOT move.
        let dp = alloc.area(&lib);
        let tight = partition(
            &bsbs,
            &lib,
            &alloc,
            Area::new(dp.gates() + 16),
            &PaceConfig::standard(),
        )
        .unwrap();
        assert!(
            !tight.in_hw[1] || tight.comm_time.count() == 0,
            "middle block alone should not pay the bus"
        );
        let _ = p;
    }

    #[test]
    fn partition_accounting_is_consistent() {
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![
                bsb_full(0, OpKind::Add, 3, 100, &["a"], &["x"]),
                bsb_full(1, OpKind::Mul, 2, 900, &["x"], &["y"]),
                bsb_full(2, OpKind::Add, 1, 10, &["y"], &["z"]),
            ],
        );
        let lib = lib();
        let alloc = alloc_of(&[(OpKind::Add, 3), (OpKind::Mul, 2)]);
        let p = partition(
            &bsbs,
            &lib,
            &alloc,
            Area::new(20_000),
            &PaceConfig::standard(),
        )
        .unwrap();
        assert_eq!(p.datapath_area, alloc.area(&lib));
        assert!(p.total_time <= p.all_sw_time, "DP never loses to all-SW");
        assert!(p.comm_time <= p.total_time);
        let in_runs: usize = p.runs.iter().map(|r| r.len()).sum();
        assert_eq!(in_runs, p.hw_count());
        assert!((0.0..=1.0).contains(&p.size_fraction()));
        assert!((0.0..=1.0).contains(&p.hw_fraction_static(&bsbs)));
    }

    #[test]
    fn empty_application_partitions_trivially() {
        let bsbs = BsbArray::from_bsbs("t", vec![]);
        let p = partition(
            &bsbs,
            &lib(),
            &RMap::new(),
            Area::new(1_000),
            &PaceConfig::standard(),
        )
        .unwrap();
        assert_eq!(p.total_time, Cycles::ZERO);
        assert_eq!(p.speedup_pct(), 0.0);
    }

    #[test]
    fn dp_beats_or_matches_all_software_everywhere() {
        // Randomised-ish structure, several budgets.
        let blocks: Vec<Bsb> = (0..8)
            .map(|i| {
                let kind = match i % 3 {
                    0 => OpKind::Add,
                    1 => OpKind::Mul,
                    _ => OpKind::Sub,
                };
                bsb_full(i, kind, 1 + (i as usize % 4), 10 * (i as u64 + 1), &[], &[])
            })
            .collect();
        let bsbs = BsbArray::from_bsbs("t", blocks);
        let alloc = alloc_of(&[(OpKind::Add, 2), (OpKind::Mul, 1), (OpKind::Sub, 1)]);
        let lib = lib();
        let dp_area = alloc.area(&lib).gates();
        for extra in [0u64, 50, 200, 1_000, 10_000] {
            let p = partition(
                &bsbs,
                &lib,
                &alloc,
                Area::new(dp_area + extra),
                &PaceConfig::standard(),
            )
            .unwrap();
            assert!(p.total_time <= p.all_sw_time, "budget +{extra}");
        }
    }
}
