//! Configuration of the PACE evaluation.

use lycos_hwlib::{CommModel, EcaModel, SwProcessor};

/// All cost models and tuning knobs the partitioner needs.
///
/// The default reproduces the paper's setting: a 1998-vintage embedded
/// processor, memory-mapped communication, standard gate costs and a
/// 16-GE dynamic-programming area quantum.
#[derive(Clone, Debug)]
pub struct PaceConfig {
    /// Software processor model.
    pub cpu: SwProcessor,
    /// Hardware/software bus model.
    pub comm: CommModel,
    /// Controller area model (applied to *list-schedule* state counts —
    /// the realistic estimate of §5.1).
    pub eca: EcaModel,
    /// Gate-equivalents per dynamic-programming area unit. Controller
    /// areas are rounded *up* to whole quanta, so the area budget is
    /// never exceeded. Smaller quanta cost DP time, larger quanta waste
    /// a little area.
    pub quantum: u64,
}

impl PaceConfig {
    /// The paper-reproduction default.
    pub fn standard() -> Self {
        PaceConfig {
            cpu: SwProcessor::embedded_1998(),
            comm: CommModel::standard(),
            eca: EcaModel::standard(),
            quantum: 16,
        }
    }

    /// Replaces the processor model.
    pub fn with_cpu(mut self, cpu: SwProcessor) -> Self {
        self.cpu = cpu;
        self
    }

    /// Replaces the communication model.
    pub fn with_comm(mut self, comm: CommModel) -> Self {
        self.comm = comm;
        self
    }

    /// Replaces the DP area quantum.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum >= 1, "area quantum must be positive");
        self.quantum = quantum;
        self
    }
}

impl Default for PaceConfig {
    fn default() -> Self {
        PaceConfig::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_standard() {
        let d = PaceConfig::default();
        assert_eq!(d.quantum, 16);
        assert_eq!(d.cpu.name(), "embedded-1998");
    }

    #[test]
    fn builders_replace_fields() {
        let c = PaceConfig::standard()
            .with_cpu(SwProcessor::standard())
            .with_comm(CommModel::free())
            .with_quantum(8);
        assert_eq!(c.cpu.name(), "embedded-risc");
        assert_eq!(c.comm, CommModel::free());
        assert_eq!(c.quantum, 8);
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn zero_quantum_panics() {
        PaceConfig::standard().with_quantum(0);
    }
}
