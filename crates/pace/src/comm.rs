//! Hardware/software communication estimation for block runs.
//!
//! PACE moves *runs* of adjacent BSBs to hardware; values flowing inside
//! a run stay in the ASIC for free, while values crossing the boundary
//! pay bus transfers. For each variable the transfer count is estimated
//! as `min(producer executions, consumer executions)` — a value that
//! changes rarely but is read often (a per-pixel constant in an inner
//! loop) is transferred at its *production* rate, not its consumption
//! rate, which models keeping it in an ASIC register across iterations.

use lycos_hwlib::{CommModel, Cycles};
use lycos_ir::BsbArray;
use std::collections::BTreeMap;

/// Word traffic of one candidate hardware run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RunTraffic {
    /// Total words transferred into the run over the application run.
    pub in_words: u64,
    /// Estimated number of inbound transfer bursts.
    pub in_bursts: u64,
    /// Total words transferred out of the run.
    pub out_words: u64,
    /// Estimated number of outbound transfer bursts.
    pub out_bursts: u64,
}

impl RunTraffic {
    /// Bus time for this traffic under `comm`.
    pub fn cost(&self, comm: &CommModel) -> Cycles {
        let cycles = |words: u64, bursts: u64| {
            if words == 0 {
                0
            } else {
                comm.sync_overhead * bursts + comm.cycles_per_word * words
            }
        };
        Cycles::new(cycles(self.in_words, self.in_bursts) + cycles(self.out_words, self.out_bursts))
    }
}

/// Estimates the boundary traffic of the hardware run `[j, k]`
/// (inclusive block indices).
///
/// * **Inbound**: a variable read by a run block whose latest definition
///   is outside the run (or is a program input) is transferred
///   `min(producer profile, consumer profile)` times (program inputs
///   once). Several consumers of the same variable are charged at the
///   highest such rate, once.
/// * **Outbound**: a variable written in the run and read by a later
///   block before being overwritten is transferred
///   `min(writer profile, first reader profile)` times.
///
/// Burst counts are the per-direction maxima over variables — an
/// estimate of how often the run boundary is actually crossed.
///
/// # Panics
///
/// Panics if `j > k` or `k` is out of range.
pub fn run_traffic(bsbs: &BsbArray, j: usize, k: usize) -> RunTraffic {
    assert!(j <= k && k < bsbs.len(), "invalid run [{j}, {k}]");
    let blocks = bsbs.as_slice();

    // Inbound: per variable, the strongest (producer, consumer) rate.
    let mut in_rate: BTreeMap<&str, u64> = BTreeMap::new();
    for (c, block) in blocks.iter().enumerate().take(k + 1).skip(j) {
        for v in &block.reads {
            // Latest definition strictly before block c.
            let producer = blocks[..c].iter().rposition(|b| b.writes.contains(v));
            let from_inside = producer.is_some_and(|p| p >= j);
            if from_inside {
                continue; // value lives in the data path already
            }
            let rate = match producer {
                Some(p) => blocks[p].profile.min(block.profile),
                None => 1, // program input: load once
            };
            let e = in_rate.entry(v.as_str()).or_insert(0);
            *e = (*e).max(rate);
        }
    }

    // Outbound: last writer in the run vs first later reader.
    let mut out_rate: BTreeMap<&str, u64> = BTreeMap::new();
    for (w, block) in blocks.iter().enumerate().take(k + 1).skip(j) {
        for v in &block.writes {
            let is_last_writer_in_run = !blocks[w + 1..=k].iter().any(|b| b.writes.contains(v));
            if !is_last_writer_in_run {
                continue;
            }
            // Scan forward past the run: a reader consumes the value; a
            // rewriter kills it.
            for later in &blocks[k + 1..] {
                if later.reads.contains(v) {
                    out_rate.insert(v.as_str(), block.profile.min(later.profile));
                    break;
                }
                if later.writes.contains(v) {
                    break;
                }
            }
        }
    }

    RunTraffic {
        in_words: in_rate.values().sum(),
        in_bursts: in_rate.values().max().copied().unwrap_or(0),
        out_words: out_rate.values().sum(),
        out_bursts: out_rate.values().max().copied().unwrap_or(0),
    }
}

/// Lazily-filled memo table of run bus costs.
///
/// [`run_traffic`] depends only on the BSB array, never on the
/// allocation, so its costs can be shared across every candidate of an
/// allocation-space search instead of being recomputed per partition
/// call. Entries are filled on first use; a full table over `eigen`'s
/// 46 blocks is ~2k words, so the memo is kept dense.
///
/// The DP queries each run once while building its tables and copies
/// the cost into them — the backtrack reads the run table, never this
/// memo, and runs the controller budget can never admit are not
/// queried at all (see `crate::DpScratch`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CommCosts {
    n: usize,
    cost: Vec<u64>,
    known: Vec<bool>,
}

impl CommCosts {
    /// An empty table for an application of `n` blocks.
    pub fn new(n: usize) -> Self {
        CommCosts {
            n,
            cost: vec![0; n * n],
            known: vec![false; n * n],
        }
    }

    /// Bus cost (in cycles) of the hardware run `[j, k]`, memoised.
    ///
    /// # Panics
    ///
    /// Panics if `j > k`, `k` is out of range, or `bsbs` has a
    /// different length than the table was created for.
    pub fn cost(&mut self, bsbs: &BsbArray, comm: &CommModel, j: usize, k: usize) -> u64 {
        assert_eq!(bsbs.len(), self.n, "table built for another app");
        assert!(j <= k && k < self.n, "invalid run [{j}, {k}]");
        let idx = j * self.n + k;
        if !self.known[idx] {
            self.cost[idx] = run_traffic(bsbs, j, k).cost(comm).count();
            self.known[idx] = true;
        }
        self.cost[idx]
    }

    /// Copies into a fresh table every run price that provably
    /// survives a profile-only edit of the blocks listed in `dirty`
    /// (positions into `bsbs`, which must have the var sets the donor
    /// table was priced under — the caller checks that with per-block
    /// read/write-set marks).
    ///
    /// With every read/write set unchanged, a dirty block `d` can move
    /// the price of run `[j, k]` only through its *rate* — profiles
    /// enter [`run_traffic`] nowhere else — and a rate involving `d`
    /// is charged in exactly four situations:
    ///
    /// * the run contains `d` and `d` *imports*: `d` reads `v` whose
    ///   latest producer sits before the run — a producer inside the
    ///   run makes the edge internal (free), and a variable nobody
    ///   wrote yet is a program input, charged at the constant rate 1;
    /// * the run contains `d` and `d` *exports*: `d` is the run's last
    ///   writer of `v` (no rewrite between `d` and the run's end) and
    ///   a later reader consumes `v` before its next rewrite;
    /// * `d` produces a value the run imports: `d` writes `v`, the run
    ///   starts after `d` but before `v`'s next rewrite, and some run
    ///   block up to (and including) that rewrite reads `v` — readers
    ///   past the rewrite are fed by it, not by `d`;
    /// * `d` is the *first* consumer of a value the run exports: the
    ///   run writes `v`, `d > k` reads it, and nothing touches `v`
    ///   between the run's end and `d` — an intervening reader sets
    ///   the outbound rate instead, an intervening writer kills the
    ///   value.
    ///
    /// Killer blocks (rewrites after the run) gate outbound traffic by
    /// *identity*, not rate, so a profile edit never acts through
    /// them; every cell the rules above leave untouched carries over.
    pub(crate) fn carry_clean(&self, bsbs: &BsbArray, dirty: &[usize]) -> CommCosts {
        let n = bsbs.len();
        assert_eq!(n, self.n, "table built for another app");
        let blocks = bsbs.as_slice();
        let mut stale = vec![false; n * n];
        for &d in dirty {
            // `d` importing from before the run: only runs that start
            // after `v`'s producer and still contain `d` pay a rate
            // with `d`'s profile in it.
            for v in &blocks[d].reads {
                let Some(p) = blocks[..d].iter().rposition(|b| b.writes.contains(v)) else {
                    continue; // program input: rate 1, profile-free
                };
                for j in p + 1..=d {
                    for cell in stale[j * n + d..j * n + n].iter_mut() {
                        *cell = true;
                    }
                }
            }
            for v in &blocks[d].writes {
                let nw = blocks[d + 1..]
                    .iter()
                    .position(|b| b.writes.contains(v))
                    .map_or(n, |p| d + 1 + p);
                // `d` exporting: runs ending in [d, nw) with a reader
                // left in (k, nw] have `d` as their last writer of `v`
                // and that reader as its consumer. (A co-located
                // reader at `nw` consumes before rewriting — the
                // outbound scan checks reads first.)
                let mut reader_after = nw < n && blocks[nw].reads.contains(v);
                for k in (d..nw.min(n)).rev() {
                    if k + 1 < nw && blocks[k + 1].reads.contains(v) {
                        reader_after = true;
                    }
                    if reader_after {
                        for row in 0..=d {
                            stale[row * n + k] = true;
                        }
                    }
                }
                // `d` as producer for later-starting runs: the readers
                // it feeds lie in (d, nw] — a run starting in that
                // window pays d's rate once it reaches the first one.
                let mut first_reader = usize::MAX;
                for j in (d + 1..=nw.min(n - 1)).rev() {
                    if blocks[j].reads.contains(v) {
                        first_reader = j;
                    }
                    if first_reader != usize::MAX {
                        for cell in stale[j * n + first_reader..j * n + n].iter_mut() {
                            *cell = true;
                        }
                    }
                }
            }
            // `d` as first later reader: a run ending at k < d exports
            // to `d` only if it writes `v` (last writer ≥ j) and no
            // block in (k, d) reads or writes `v`.
            for v in &blocks[d].reads {
                let last_touch = blocks[..d]
                    .iter()
                    .rposition(|b| b.reads.contains(v) || b.writes.contains(v));
                let mut last_writer = None;
                for k in 0..d {
                    if blocks[k].writes.contains(v) {
                        last_writer = Some(k);
                    }
                    if last_touch.is_some_and(|t| k < t) {
                        continue; // something still touches v after k
                    }
                    if let Some(w) = last_writer {
                        for j in 0..=w {
                            stale[j * n + k] = true;
                        }
                    }
                }
            }
        }
        let mut out = CommCosts::new(n);
        for j in 0..n {
            for k in j..n {
                let idx = j * n + k;
                if !stale[idx] && self.known[idx] {
                    out.cost[idx] = self.cost[idx];
                    out.known[idx] = true;
                }
            }
        }
        out
    }
}

/// Admissible per-block communication floors for the search bound.
///
/// `floors[b]` lower-bounds the communication share block `b` adds to
/// *any* hardware run the DP can place it in: the minimum over all
/// runs `[j, k]` containing `b` — restricted to `b`'s maximal
/// barrier-free segment — of `⌊cost(j, k) / (k − j + 1)⌋`.
/// `barrier[b]` marks blocks that are hardware-infeasible under every
/// allocation of the space; real runs contain only feasible blocks, so
/// no run ever spans a barrier and the segment restriction is sound.
/// For a run `R` the DP charges `cost(R)` once, and
///
/// ```text
/// Σ_{b ∈ R} floors[b] ≤ |R| · ⌊cost(R) / |R|⌋ ≤ cost(R)
/// ```
///
/// so adding `floors[b]` to every hardware block's bound contribution
/// never exceeds the communication the DP actually pays. Barrier
/// blocks get a zero floor — they are charged software time, never run
/// communication. Costs come from the caller's [`CommCosts`] memo —
/// the artifact seam hands in the same table the DP reads, so the
/// floor and the evaluation can never disagree on a run's price (and
/// a warmed table answers without deriving anything).
pub(crate) fn comm_floors(
    bsbs: &BsbArray,
    comm: &CommModel,
    barrier: &[bool],
    costs: &mut CommCosts,
) -> Vec<u64> {
    assert_eq!(bsbs.len(), barrier.len(), "one flag per block");
    let n = bsbs.len();
    let mut floors = vec![0u64; n];
    let mut s = 0usize;
    while s < n {
        if barrier[s] {
            s += 1;
            continue;
        }
        let mut e = s;
        while e + 1 < n && !barrier[e + 1] {
            e += 1;
        }
        for f in &mut floors[s..=e] {
            *f = u64::MAX;
        }
        for j in s..=e {
            for k in j..=e {
                let share = costs.cost(bsbs, comm, j, k) / (k - j + 1) as u64;
                for f in &mut floors[j..=k] {
                    *f = (*f).min(share);
                }
            }
        }
        s = e + 1;
    }
    floors
}

#[cfg(test)]
mod tests {
    use super::*;
    use lycos_ir::{Bsb, BsbId, BsbOrigin, Dfg};
    use std::collections::BTreeSet;

    /// The array with block `d`'s profile bumped — a pure rate edit.
    fn with_bump(original: &BsbArray, d: usize) -> BsbArray {
        let mut blocks = original.as_slice().to_vec();
        blocks[d].profile += 13;
        BsbArray::from_bsbs("t", blocks)
    }

    fn bsb(i: u32, profile: u64, reads: &[&str], writes: &[&str]) -> Bsb {
        Bsb {
            id: BsbId(i),
            name: format!("b{i}"),
            dfg: Dfg::new(),
            reads: reads.iter().map(|s| s.to_string()).collect::<BTreeSet<_>>(),
            writes: writes
                .iter()
                .map(|s| s.to_string())
                .collect::<BTreeSet<_>>(),
            profile,
            origin: BsbOrigin::Body,
        }
    }

    #[test]
    fn values_inside_a_run_are_free() {
        // b0 writes x; b1 reads x. Run [0,1]: no traffic for x.
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![bsb(0, 10, &[], &["x"]), bsb(1, 10, &["x"], &["y"])],
        );
        let t = run_traffic(&bsbs, 0, 1);
        assert_eq!(t.in_words, 0);
        assert_eq!(t.out_words, 0, "y is never read later");
    }

    #[test]
    fn inbound_rate_is_min_of_producer_and_consumer() {
        // b0 (profile 4) writes c; b1 (profile 100, inner loop) reads c.
        // Run [1,1]: c transferred per b0 execution, not per b1.
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![bsb(0, 4, &[], &["c"]), bsb(1, 100, &["c"], &["z"])],
        );
        let t = run_traffic(&bsbs, 1, 1);
        assert_eq!(t.in_words, 4, "per-pixel constant enters 4 times");
        assert_eq!(t.in_bursts, 4);
    }

    #[test]
    fn program_inputs_enter_once() {
        let bsbs = BsbArray::from_bsbs("t", vec![bsb(0, 50, &["in"], &["out"])]);
        let t = run_traffic(&bsbs, 0, 0);
        assert_eq!(t.in_words, 1);
    }

    #[test]
    fn outbound_rate_is_min_of_writer_and_reader() {
        // Inner block (100) writes r; outer block (4) reads it after.
        let bsbs = BsbArray::from_bsbs("t", vec![bsb(0, 100, &[], &["r"]), bsb(1, 4, &["r"], &[])]);
        let t = run_traffic(&bsbs, 0, 0);
        assert_eq!(t.out_words, 4, "only the final value per outer iteration");
    }

    #[test]
    fn rewritten_values_are_dead() {
        // b0 writes x; b1 rewrites x without reading; b2 reads x.
        // Run [0,0]: x from b0 never escapes.
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![
                bsb(0, 10, &[], &["x"]),
                bsb(1, 10, &[], &["x"]),
                bsb(2, 10, &["x"], &[]),
            ],
        );
        let t = run_traffic(&bsbs, 0, 0);
        assert_eq!(t.out_words, 0);
    }

    #[test]
    fn last_writer_in_run_wins() {
        // Both b0 and b1 write x inside the run; reader sees b1's value.
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![
                bsb(0, 10, &[], &["x"]),
                bsb(1, 3, &[], &["x"]),
                bsb(2, 7, &["x"], &[]),
            ],
        );
        let t = run_traffic(&bsbs, 0, 1);
        assert_eq!(t.out_words, 3, "min(writer b1 = 3, reader = 7)");
    }

    #[test]
    fn shared_inbound_variable_charged_once_at_max_rate() {
        // c read by two run blocks with different profiles.
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![
                bsb(0, 5, &[], &["c"]),
                bsb(1, 10, &["c"], &[]),
                bsb(2, 50, &["c"], &[]),
            ],
        );
        let t = run_traffic(&bsbs, 1, 2);
        assert_eq!(t.in_words, 5, "min(5, 50) beats min(5, 10), charged once");
    }

    #[test]
    fn carried_runs_match_a_full_reprice_exhaustively() {
        // A producer/consumer chain with a shared constant, a block
        // that consumes the value it rewrites (5 reads *and* rewrites
        // `out`, so it imports the old value while being its next
        // writer) and a tail reader behind that rewrite, edited by
        // profile only at every position in turn: each carried cell
        // must equal the from-scratch price of the edited array, and
        // cells the edit can actually move must NOT be carried.
        let original = BsbArray::from_bsbs(
            "t",
            vec![
                bsb(0, 4, &["in"], &["c", "x"]),
                bsb(1, 40, &["c", "x"], &["y"]),
                bsb(2, 40, &["y"], &["x"]),
                bsb(3, 7, &["q"], &["q"]),
                bsb(4, 9, &["x", "q"], &["out"]),
                bsb(5, 30, &["out", "x"], &["out"]),
                bsb(6, 50, &["out"], &[]),
            ],
        );
        let model = CommModel::standard();
        let n = original.len();
        let mut donor = CommCosts::new(n);
        for j in 0..n {
            for k in j..n {
                donor.cost(&original, &model, j, k);
            }
        }
        for d in 0..n {
            let mut blocks = original.as_slice().to_vec();
            blocks[d].profile += 13;
            let edited = BsbArray::from_bsbs("t", blocks);
            let carried = donor.carry_clean(&edited, &[d]);
            let mut fresh = CommCosts::new(n);
            for j in 0..n {
                for k in j..n {
                    let price = fresh.cost(&edited, &model, j, k);
                    let idx = j * n + k;
                    if carried.known[idx] {
                        assert_eq!(
                            carried.cost[idx], price,
                            "stale carry for run [{j},{k}] under edit at {d}"
                        );
                    }
                }
            }
            // Any cell the edit actually moved must have been dropped
            // (the equality assert above covers carried cells; this
            // states the contrapositive directly).
            for j in 0..n {
                for k in j..n {
                    let idx = j * n + k;
                    if donor.cost[idx] != fresh.cost[idx] {
                        assert!(!carried.known[idx], "run [{j},{k}] moved under edit at {d}");
                    }
                }
            }
        }
        // The isolated self-loop block (3) couples to nothing before
        // it, so editing block 0 leaves its singleton run carried.
        let mut blocks = original.as_slice().to_vec();
        blocks[0].profile += 1;
        let edited = BsbArray::from_bsbs("t", blocks);
        let carried = donor.carry_clean(&edited, &[0]);
        assert!(carried.known[3 * n + 3], "uncoupled run must carry over");
        // Precision, not just soundness: run [4,4] reads `x`, but its
        // producer is block 2's rewrite — block 0's stale `x` never
        // reaches it, so a variable-intersection rule would give this
        // cell up for nothing.
        assert!(
            carried.known[4 * n + 4],
            "re-written producer shields the run"
        );
        // Block 6 reads `out`, yet editing 4 leaves its run priced:
        // block 5's rewrite is its producer.
        let carried = donor.carry_clean(&with_bump(&original, 4), &[4]);
        assert!(
            !carried.known[5 * n + 5],
            "rewriter that consumes the value pays 4's rate"
        );
        assert!(
            carried.known[6 * n + 6],
            "reader behind the rewrite is shielded"
        );
        // Editing the tail reader (6) leaves run [3,4] priced even
        // though the run writes `out`: block 5 consumes the value
        // first, so 6's rate never enters the run's outbound price.
        let carried = donor.carry_clean(&with_bump(&original, 6), &[6]);
        assert!(
            carried.known[3 * n + 4],
            "earlier consumer shields the exporter"
        );
        // Even a run CONTAINING the dirty block can carry: inside
        // [2,4], block 3 imports only the program input `q` (rate 1,
        // profile-free) and its `q` export dies unread past the run's
        // end — so 3's profile never enters the price.
        let carried = donor.carry_clean(&with_bump(&original, 3), &[3]);
        assert!(
            carried.known[2 * n + 4],
            "profile-decoupled run spans the edit yet carries"
        );
        assert!(
            !carried.known[2 * n + 3],
            "run [2,3] exports q to block 4 at 3's rate"
        );
    }

    #[test]
    fn traffic_cost_uses_comm_model() {
        let t = RunTraffic {
            in_words: 4,
            in_bursts: 2,
            out_words: 1,
            out_bursts: 1,
        };
        let comm = CommModel::standard(); // sync 10, word 4
        assert_eq!(t.cost(&comm), Cycles::new((10 * 2 + 4 * 4) + (10 + 4)));
        assert_eq!(RunTraffic::default().cost(&comm), Cycles::ZERO);
        assert_eq!(t.cost(&CommModel::free()), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid run")]
    fn invalid_run_panics() {
        let bsbs = BsbArray::from_bsbs("t", vec![bsb(0, 1, &[], &[])]);
        run_traffic(&bsbs, 0, 5);
    }

    #[test]
    fn comm_floors_never_exceed_any_run_share() {
        // The documented inequality, checked exhaustively: for every
        // run within a barrier-free segment, the floors of its blocks
        // sum to at most the run's cost.
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![
                bsb(0, 40, &["in"], &["x"]),
                bsb(1, 40, &["x"], &["y"]),
                bsb(2, 8, &["y"], &["z"]),
                bsb(3, 8, &["z"], &["out"]),
            ],
        );
        let comm = CommModel::standard();
        let floors = comm_floors(&bsbs, &comm, &[false; 4], &mut CommCosts::new(4));
        let mut costs = CommCosts::new(4);
        for j in 0..4 {
            for k in j..4 {
                let total: u64 = floors[j..=k].iter().sum();
                assert!(
                    total <= costs.cost(&bsbs, &comm, j, k),
                    "floors {floors:?} overcharge run [{j}, {k}]"
                );
            }
        }
    }

    #[test]
    fn barriers_segment_the_floor_runs() {
        // b1 can never reach hardware, so no run spans it: b0 and b2
        // keep their single-block run costs as floors instead of being
        // washed out by the cheap whole-application run.
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![
                bsb(0, 100, &[], &["x"]),
                bsb(1, 1, &[], &[]),
                bsb(2, 100, &["x"], &[]),
            ],
        );
        let comm = CommModel::standard(); // sync 10, word 4
        let floors = comm_floors(&bsbs, &comm, &[false, true, false], &mut CommCosts::new(3));
        // Run [0,0]: x leaves 100 times (min(writer, reader) = 100).
        assert_eq!(floors[0], 100 * 10 + 100 * 4);
        assert_eq!(floors[1], 0, "barrier blocks never pay run comm");
        // Run [2,2]: x enters 100 times.
        assert_eq!(floors[2], 100 * 10 + 100 * 4);
        // Without the barrier the whole-app run [0,2] (x internal, no
        // traffic) collapses every floor to zero.
        assert_eq!(
            comm_floors(&bsbs, &comm, &[false; 3], &mut CommCosts::new(3)),
            vec![0, 0, 0]
        );
    }
}
