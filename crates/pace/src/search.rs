//! Memoised, parallel, bound-driven allocation-space search.
//!
//! The paper's baseline partitions the application for *every*
//! allocation in the space (§5) — exactly the cost its §4.4 complexity
//! argument holds against the PACE allocator. [`search_best`] makes
//! that baseline usable on larger spaces with four observations:
//!
//! * **Memoisation** — a BSB's list schedule depends only on the unit
//!   counts of the kinds its operations use, so per-BSB metrics are
//!   cached under the allocation's projection onto that kind set
//!   ([`lycos_core::RMap::project`]). Adjacent odometer steps change
//!   one dimension, so most blocks hit the cache on most candidates.
//!   Run communication costs never depend on the allocation at all and
//!   are memoised across every candidate a worker evaluates
//!   ([`CommCosts`]), instead of being recomputed per partition call.
//! * **Incremental frontier metrics** — one odometer step changes one
//!   (occasionally a few) unit-kind counts, so the sweep keeps a
//!   per-kind → affected-block index and re-derives only the *dirty*
//!   metrics entries ([`MetricsCache::step_into`]); clean blocks are
//!   reused without even probing the memo. The dirty/clean split is
//!   reported as [`SearchStats::dirty_ratio`].
//! * **Branch-and-bound** — with [`SearchOptions::bound`] on, the walk
//!   skips whole odometer subtrees whose admissible lower bound
//!   ([`crate::SearchBounds`]) proves they cannot beat the incumbent
//!   under the strict `(time, area)` improvement rule — including a
//!   leaf-level check that spares the DP for individually hopeless
//!   candidates. With [`SearchOptions::bound_comm`] (the default) the
//!   bound additionally folds in each block's admissible communication
//!   floor instead of relaxing all traffic to zero, pruning harder on
//!   communication-dominated applications. Workers share their best
//!   `(time, area)` through an [`AtomicU64`]-packed incumbent so one
//!   worker's early optimum tightens every other worker's bound;
//!   cross-worker pruning is deliberately stricter than own-range
//!   pruning so the deterministic final reduce still returns the
//!   *field-exact* winner of the exhaustive walk (same allocation,
//!   partition, time and area). Pruned points are accounted separately
//!   ([`SearchStats::bounded`]).
//! * **Parallelism** — with [`SearchOptions::steal`] (the default) the
//!   odometer sequence is cut into subtree-aligned chunks behind an
//!   atomic cursor and workers *steal* the next chunk as they finish,
//!   so a worker handed a heavily pruned region doesn't idle while its
//!   neighbours grind; with stealing off, the sequence is split into
//!   static contiguous ranges balanced by the truncation pre-walk's
//!   per-chunk evaluable counts. Each worker keeps a private cache and
//!   scratch; results reduce deterministically under the strict
//!   `(time, area, index)` improvement order — exactly the order the
//!   sequential walk discovers winners in — so the outcome is
//!   bit-identical to [`exhaustive_best`] at any worker count and
//!   either scheduling policy: including `evaluated`, `skipped` and
//!   truncation behaviour when bounding is off, and the field-exact
//!   winner when it is on. The per-candidate DP leaf itself runs the
//!   lane-chunked inner scan ([`SearchOptions::simd`], bit-identical
//!   to the scalar kernel).
//!
//! The incumbent/record/reduce seam of the engine is pluggable through
//! the [`Objective`] trait: [`BestUnderBudget`] *is* the classic
//! single-incumbent engine described above (bit-identical, including
//! the [`AtomicU64`]-packed cross-worker incumbent and the
//! lexicographic `(time, area, index)` reduce), while [`ParetoFront`]
//! keeps a dominance frontier instead — branch-and-bound prunes
//! against the frontier's area-conditional best time, still
//! admissibly — so one sweep ([`search_pareto`]) emits the whole
//! time×area trade-off curve instead of one point per budget.

use crate::artifacts::{SearchArtifacts, WarmSeed};
use crate::bounds::LevelState;
use crate::metrics::{bsb_statics, feasible_block_metrics, infeasible_block_metrics, BsbStatics};
use crate::stop::{Completion, StopReason, StopSignal, STOP_CHECK_INTERVAL};
use crate::{
    BsbMetrics, CommCosts, DpScratch, PaceConfig, PaceError, Partition, SearchBounds, SearchResult,
};
use lycos_core::{RMap, Restrictions};
use lycos_hwlib::{Area, Cycles, FuId, HwLibrary};
use lycos_ir::BsbArray;
use lycos_sched::FuCounts;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Knobs of the allocation-search engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SearchOptions {
    /// Worker threads for the sweep. `0` = one per available core;
    /// `1` = sequential (still memoised when `cache` is on).
    pub threads: usize,
    /// Cap on the number of *evaluated* allocations, as in
    /// [`exhaustive_best`](crate::exhaustive_best); `None` exhausts
    /// the space. With `bound` on the limit caps the same candidate
    /// window, so the winner still matches the limited exhaustive
    /// walk; bound-pruned points inside the window do not count
    /// against the limit.
    pub limit: Option<usize>,
    /// Whether to memoise per-BSB metrics across candidates. Disabling
    /// exists for benchmarking the cache itself; results are identical
    /// either way.
    pub cache: bool,
    /// Worker threads *inside* one PACE DP evaluation: each DP row's
    /// area axis is split across scoped workers while rows stay
    /// sequential ([`DpScratch::with_dp_threads`]). `1` (the default)
    /// = sequential; `0` = one per available core. Results are
    /// bit-identical at any setting. In the fully automatic shape
    /// (`threads: 0` with this left at `1`),
    /// [`SearchOptions::resolve`] auto-engages the row split when a
    /// sweep has fewer candidates than the machine has cores; any
    /// explicitly chosen shape is honoured verbatim.
    pub dp_threads: usize,
    /// Branch-and-bound: skip odometer subtrees whose admissible lower
    /// bound ([`crate::SearchBounds`]) proves they cannot improve the
    /// incumbent. The returned winner is *field-exact* against the
    /// exhaustive walk — same allocation, partition, time and area,
    /// same `(time, area)` tie-break — but `evaluated`/`skipped`
    /// become engine-effort telemetry: pruned points are counted in
    /// [`SearchStats::bounded`] instead, and under multiple worker
    /// threads the exact split depends on incumbent-sharing timing.
    ///
    /// Cross-worker sharing degrades gracefully on astronomically
    /// scaled applications: an improving `(time, area)` pair with a
    /// component ≥ 2³² − 1 cannot be packed into the shared incumbent
    /// word and is published as *no information* instead of a
    /// saturated lie (counted by
    /// [`SearchStats::unpacked_incumbents`]). Each worker still prunes
    /// against its own incumbent and the result is unchanged — only
    /// the cross-worker prune assist is lost for such pairs.
    pub bound: bool,
    /// Fold the admissible communication floor into the lower bound
    /// ([`crate::SearchBounds::with_comm_floor`]): blocks forced to
    /// hardware carry their minimum unavoidable run-traffic share
    /// instead of relaxing communication to zero. Strictly at least as
    /// tight as the relaxed bound and still admissible, so the winner
    /// stays field-exact; only the prune ratio changes. On by default;
    /// inert unless [`SearchOptions::bound`] is on. Turning it off
    /// recovers the PR 5 relaxed bound for A/B benchmarking.
    pub bound_comm: bool,
    /// Run the lane-chunked (SIMD-width) DP inner scan
    /// ([`DpScratch::set_simd`]) for every candidate evaluation. The
    /// chunked kernel is bit-identical to the scalar reference, which
    /// always handles the row tail; this knob exists purely to
    /// benchmark the leaf cost. On by default.
    pub simd: bool,
    /// Schedule sweep workers by chunked work-stealing: the odometer
    /// sequence is cut into subtree-aligned chunks behind an atomic
    /// cursor and each worker takes the next chunk as it finishes, so
    /// bound-pruned regions don't leave workers idle. Off (or a single
    /// worker) falls back to the static pre-walk-balanced range split.
    /// Results are identical either way — winner, accounting and
    /// truncation — only the load balance and
    /// [`SearchStats::steals`] telemetry change. On by default.
    pub steal: bool,
    /// Capacity of the cross-request [`crate::ArtifactStore`] in
    /// applications, for the layers that own one (the
    /// `lycos::Pipeline` facade, the serve loop). The
    /// engine itself never reads this — artifacts are handed in — but
    /// carrying it here lets one knob table configure the whole stack.
    /// Clamped to at least `1` by the store constructor.
    pub store_cap: usize,
    /// Warm-start: cross-request reuse of what earlier runs over the
    /// same artifacts learned. Two mechanisms ride this knob — on an
    /// artifact-store hit the [`BestUnderBudget`] shared incumbent is
    /// reseeded from a previously recorded winner whose budget fits
    /// under the current one (requires [`SearchOptions::bound`] and
    /// store-supplied seeds), and the per-budget evaluation memo
    /// serves recorded candidate times so provably non-improving
    /// points skip the DP outright. Both are sound — results stay
    /// field-identical to a cold run — so this knob exists purely for
    /// A/B benchmarking the warm path. On by default; off leaves no
    /// trace (nothing served, nothing recorded).
    pub warm: bool,
    /// Whether a store miss may build its artifacts *incrementally*
    /// from the nearest resident entry by per-block fingerprint
    /// overlap — cloning statics, bound tables, and the traffic memo
    /// for content-clean blocks and re-deriving only the dirty ones
    /// (see `lycos_pace::BlockKey`). Sound — results stay
    /// field-identical to a from-scratch build, pinned by
    /// `incremental_prop.rs` — so this knob exists for A/B
    /// benchmarking the edit loop. On by default; off always builds
    /// from scratch on a miss.
    pub incremental: bool,
    /// Anytime deadline in milliseconds, measured from the moment the
    /// engine starts its sweep; `None` (the default) searches to
    /// completion. On expiry every worker stops cleanly at its next
    /// stop check, the deterministic reduce runs over whatever was
    /// visited, and the result carries
    /// [`Completion::DeadlineTruncated`] plus the unvisited remainder
    /// in [`SearchStats::unvisited`] — a best-so-far incumbent for
    /// [`search_best`], a partial frontier for [`search_pareto`].
    /// Folded together with any externally supplied
    /// [`StopSignal`] (earliest deadline wins) by the `_with_stop`
    /// entry points.
    pub deadline_ms: Option<u64>,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            threads: 0,
            limit: None,
            cache: true,
            dp_threads: 1,
            bound: false,
            bound_comm: true,
            simd: true,
            steal: true,
            store_cap: 8,
            warm: true,
            incremental: true,
            deadline_ms: None,
        }
    }
}

impl SearchOptions {
    /// Sequential, memoised, unlimited, unbounded — the reference
    /// configuration.
    pub fn sequential() -> Self {
        SearchOptions {
            threads: 1,
            ..SearchOptions::default()
        }
    }

    /// The default configuration, as the seed of a builder chain
    /// mirroring the `lycos::Pipeline` idiom:
    /// `SearchOptions::new().threads(4).bound(true)`. The pub fields
    /// remain usable directly; the chain is sugar over them.
    pub fn new() -> Self {
        SearchOptions::default()
    }

    /// Replaces [`SearchOptions::threads`].
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Replaces [`SearchOptions::limit`].
    #[must_use]
    pub fn limit(mut self, limit: Option<usize>) -> Self {
        self.limit = limit;
        self
    }

    /// Replaces [`SearchOptions::cache`].
    #[must_use]
    pub fn cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }

    /// Replaces [`SearchOptions::dp_threads`].
    #[must_use]
    pub fn dp_threads(mut self, dp_threads: usize) -> Self {
        self.dp_threads = dp_threads;
        self
    }

    /// Replaces [`SearchOptions::bound`].
    #[must_use]
    pub fn bound(mut self, bound: bool) -> Self {
        self.bound = bound;
        self
    }

    /// Replaces [`SearchOptions::bound_comm`].
    #[must_use]
    pub fn bound_comm(mut self, bound_comm: bool) -> Self {
        self.bound_comm = bound_comm;
        self
    }

    /// Replaces [`SearchOptions::simd`].
    #[must_use]
    pub fn simd(mut self, simd: bool) -> Self {
        self.simd = simd;
        self
    }

    /// Replaces [`SearchOptions::steal`].
    #[must_use]
    pub fn steal(mut self, steal: bool) -> Self {
        self.steal = steal;
        self
    }

    /// Replaces [`SearchOptions::store_cap`].
    #[must_use]
    pub fn store_cap(mut self, store_cap: usize) -> Self {
        self.store_cap = store_cap;
        self
    }

    /// Replaces [`SearchOptions::warm`].
    #[must_use]
    pub fn warm(mut self, warm: bool) -> Self {
        self.warm = warm;
        self
    }

    /// Replaces [`SearchOptions::incremental`].
    #[must_use]
    pub fn incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Replaces [`SearchOptions::deadline_ms`].
    #[must_use]
    pub fn deadline_ms(mut self, deadline_ms: Option<u64>) -> Self {
        self.deadline_ms = deadline_ms;
        self
    }

    /// Resolved engine shape for a sweep over `candidates` points:
    /// `(sweep workers, dp workers)`.
    ///
    /// Sweep workers follow the usual clamps (`0` = one per core,
    /// never more workers than points, hard cap). In the fully
    /// automatic shape — `threads: 0` ("use the machine") with
    /// `dp_threads` at its sequential default of `1` — a sweep with
    /// fewer candidates than the machine has cores auto-engages the
    /// intra-candidate row split with the cores the fan-out cannot
    /// use. Any explicitly chosen shape (a concrete `threads`, or a
    /// `dp_threads` other than `1`, including `0`) is honoured
    /// verbatim, so [`SearchOptions::sequential`] really is
    /// sequential. Results are bit-identical at any resolution; only
    /// the wall clock changes.
    pub fn resolve(&self, candidates: u128) -> (usize, usize) {
        self.resolve_with(candidates, available_parallelism())
    }

    /// [`SearchOptions::resolve`] with an explicit core count, so the
    /// heuristic is testable off the build machine.
    fn resolve_with(&self, candidates: u128, available: usize) -> (usize, usize) {
        let threads = effective_threads_with(self.threads, candidates, available);
        let auto_shape = self.threads == 0 && self.dp_threads == 1;
        let dp_threads = if auto_shape && candidates < available as u128 {
            (available / threads.max(1)).max(1)
        } else {
            self.dp_threads
        };
        (threads, dp_threads)
    }
}

/// Telemetry of one search run. Not part of a [`SearchResult`]'s
/// identity — two results are equal if they found the same answer over
/// the same space, however long it took.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Worker threads the sweep actually used.
    pub threads: usize,
    /// Per-BSB metric lookups answered from the memo cache.
    pub cache_hits: u64,
    /// Per-BSB metric lookups that had to list-schedule.
    pub cache_misses: u64,
    /// Memo keys actually allocated (one per cache insert). Every
    /// lookup used to allocate a key vector just to probe; probing now
    /// goes through a reused scratch buffer, so
    /// `cache_hits + cache_misses − key_allocs` probes cost no
    /// allocation at all.
    pub key_allocs: u64,
    /// Improving candidates whose `(time, area)` pair could not be
    /// packed into the shared incumbent word (a component ≥ 2³² − 1)
    /// and was published as *no information* instead — see
    /// [`SearchOptions::bound`]. Always `0` unless bounding is on;
    /// non-zero means cross-worker pruning ran without those assists
    /// (the result is unaffected either way).
    pub unpacked_incumbents: u64,
    /// Points never evaluated because an admissible lower bound proved
    /// their whole subtree could not improve the incumbent — always
    /// `0` unless [`SearchOptions::bound`] is on. Counted separately
    /// from `skipped`, so
    /// `evaluated + skipped + bounded + truncated_points` always
    /// equals the space size.
    pub bounded: u128,
    /// Points past the truncation window — never visited because the
    /// evaluation limit cut the space short (`0` on full sweeps).
    pub truncated_points: u128,
    /// Per-block metric entries actually re-derived when refreshing a
    /// candidate's metrics (dirty kinds after an odometer step, plus
    /// every block of a from-scratch refresh).
    pub dirty_probes: u64,
    /// Per-block metric entries reused untouched across an odometer
    /// step — the incremental-metrics saving: these cost neither a
    /// projection nor a memo probe.
    pub clean_reuses: u64,
    /// Chunks taken by work-stealing workers beyond their first — the
    /// rebalancing the dynamic scheduler performed that a static split
    /// could not. `0` under the static split or a single worker.
    pub steals: u64,
    /// Requests this search answered from a cross-request
    /// [`ArtifactStore`](crate::ArtifactStore) hit (artifacts reused).
    /// Set by the store-owning caller, not the engine; `0` on the
    /// store-less compat paths.
    pub artifact_hits: u64,
    /// Requests that had to build their artifacts from scratch before
    /// searching. Set by the store-owning caller; `0` on the
    /// store-less compat paths.
    pub artifact_misses: u64,
    /// Whether a stored previous winner was actually installed as the
    /// initial shared incumbent (warm-start reseeding) — requires
    /// [`SearchOptions::bound`] + [`SearchOptions::warm`], a store
    /// hit, and a recorded winner whose budget fits under the current
    /// one. The result is field-identical either way; this flag is the
    /// telemetry that the prune had a head start.
    pub warm_reseeded: bool,
    /// Blocks whose allocation-independent artifacts (statics, bound
    /// tables) were cloned from a resident store entry on the
    /// incremental diff path instead of being re-derived. Zero on
    /// store hits, from-scratch misses, and store-less runs.
    pub blocks_reused: u64,
    /// Blocks re-derived from scratch during an incremental build —
    /// the edited (dirty) blocks of the diff.
    pub blocks_rederived: u64,
    /// Whether this request's artifacts were built incrementally from
    /// a fingerprint-overlapping donor entry (1) rather than from
    /// scratch or served whole from the store (0). Counted as a `u64`
    /// so the Table-1 CSV and serve telemetry can sum it across
    /// requests.
    pub incremental_hits: u64,
    /// How the run ended: [`Completion::Complete`] (exact — every
    /// point of the candidate window visited), or truncated early by a
    /// deadline or an external cancel flag (best-so-far). Telemetry
    /// like every other stats field: a `Complete` run compares equal
    /// to the sequential reference whatever its engine shape.
    pub completion: Completion,
    /// Points inside the candidate window that no worker reached
    /// before the stop signal tripped — the fifth accounting bucket:
    /// `evaluated + skipped + bounded + truncated_points + unvisited`
    /// always equals the space size. Zero on every `Complete` run.
    pub unvisited: u128,
    /// Wall-clock time of the whole search.
    pub elapsed: Duration,
}

impl SearchStats {
    /// Fraction of metric lookups answered from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of per-block metric refreshes that actually had to be
    /// re-derived, in `(0, 1]` — the incremental-metrics figure: an
    /// odometer step dirties few kinds, so most blocks ride along
    /// untouched and the ratio sits well below 1. Exactly `1.0` when
    /// nothing was ever reused (single-candidate runs, or a run that
    /// never stepped).
    pub fn dirty_ratio(&self) -> f64 {
        let total = self.dirty_probes + self.clean_reuses;
        if total == 0 {
            1.0
        } else {
            self.dirty_probes as f64 / total as f64
        }
    }
}

/// Memo cache of per-BSB metrics, keyed on the allocation's projection
/// onto each block's used unit kinds.
///
/// Guarantees that [`MetricsCache::metrics`] returns exactly what
/// [`crate::compute_metrics`] returns for the same allocation — the
/// cache is a pure evaluation-order optimisation (asserted by property
/// tests in the exploration crate). [`MetricsCache::step_into`] adds
/// the incremental path a sweep lives on: only blocks touching a
/// *dirty* kind are refreshed, through a per-kind → affected-block
/// index built once per cache.
///
/// # Examples
///
/// ```
/// use lycos_core::RMap;
/// use lycos_hwlib::HwLibrary;
/// use lycos_ir::{extract_bsbs, Cdfg, CdfgNode, DfgBuilder, OpKind, TripCount};
/// use lycos_pace::{compute_metrics, MetricsCache, PaceConfig};
///
/// let mut b = DfgBuilder::new();
/// let m = b.binary(OpKind::Mul, "a".into(), "b".into());
/// b.assign("x", m);
/// let cdfg = Cdfg::new("app", CdfgNode::block("b0", b.finish()));
/// let bsbs = extract_bsbs(&cdfg, None)?;
/// let lib = HwLibrary::standard();
/// let config = PaceConfig::standard();
/// let mult = lib.fu_for(OpKind::Mul).unwrap();
/// let alloc: RMap = [(mult, 1)].into_iter().collect();
///
/// let mut cache = MetricsCache::new(&bsbs, &lib, &config)?;
/// let cached = cache.metrics(&alloc)?;
/// assert_eq!(cached, compute_metrics(&bsbs, &lib, &alloc, &config)?);
/// let again = cache.metrics(&alloc)?;
/// assert_eq!(again, cached);
/// assert!(cache.hits() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct MetricsCache<'a> {
    bsbs: &'a BsbArray,
    lib: &'a HwLibrary,
    config: &'a PaceConfig,
    statics: Vec<BsbStatics>,
    entries: Vec<HashMap<Vec<u32>, BsbMetrics>>,
    enabled: bool,
    // Scratch projection key: probes go by slice; a key vector is
    // cloned out of here only when an entry is actually inserted.
    key_buf: Vec<u32>,
    // Per-kind → affected-block index plus generation stamps, so an
    // incremental step touches exactly the dirty blocks.
    by_kind: HashMap<FuId, Vec<usize>>,
    touched: Vec<u64>,
    generation: u64,
    hits: u64,
    misses: u64,
    key_allocs: u64,
    dirty_probes: u64,
    clean_reuses: u64,
}

impl<'a> MetricsCache<'a> {
    /// A cache over `bsbs`, precomputing the allocation-independent
    /// per-block facts (software times, required resources, kind sets).
    ///
    /// # Errors
    ///
    /// [`PaceError::Hw`] if an operation kind has no default unit.
    pub fn new(
        bsbs: &'a BsbArray,
        lib: &'a HwLibrary,
        config: &'a PaceConfig,
    ) -> Result<Self, PaceError> {
        Self::build(bsbs, lib, config, true)
    }

    /// A pass-through variant that recomputes every lookup — used to
    /// benchmark the cache against itself.
    ///
    /// # Errors
    ///
    /// [`PaceError::Hw`] if an operation kind has no default unit.
    pub fn disabled(
        bsbs: &'a BsbArray,
        lib: &'a HwLibrary,
        config: &'a PaceConfig,
    ) -> Result<Self, PaceError> {
        Self::build(bsbs, lib, config, false)
    }

    fn build(
        bsbs: &'a BsbArray,
        lib: &'a HwLibrary,
        config: &'a PaceConfig,
        enabled: bool,
    ) -> Result<Self, PaceError> {
        let statics = bsb_statics(bsbs, lib, config)?;
        Ok(Self::from_statics(bsbs, lib, config, statics, enabled))
    }

    /// A cache over statics already computed elsewhere — the search
    /// engine precomputes them once and hands each worker a clone
    /// instead of re-deriving them per thread.
    pub(crate) fn from_statics(
        bsbs: &'a BsbArray,
        lib: &'a HwLibrary,
        config: &'a PaceConfig,
        statics: Vec<BsbStatics>,
        enabled: bool,
    ) -> Self {
        let entries = vec![HashMap::new(); bsbs.len()];
        let mut by_kind: HashMap<FuId, Vec<usize>> = HashMap::new();
        for (i, stat) in statics.iter().enumerate() {
            for &fu in &stat.kinds {
                by_kind.entry(fu).or_default().push(i);
            }
        }
        let touched = vec![0; bsbs.len()];
        MetricsCache {
            bsbs,
            lib,
            config,
            statics,
            entries,
            enabled,
            key_buf: Vec::new(),
            by_kind,
            touched,
            generation: 0,
            hits: 0,
            misses: 0,
            key_allocs: 0,
            dirty_probes: 0,
            clean_reuses: 0,
        }
    }

    /// Metrics for every block under `allocation`, served from the
    /// cache where the projection matches an earlier candidate.
    ///
    /// # Errors
    ///
    /// [`PaceError::Sched`] if a block's DFG cannot be scheduled at all.
    pub fn metrics(&mut self, allocation: &RMap) -> Result<Vec<BsbMetrics>, PaceError> {
        let mut out = Vec::with_capacity(self.bsbs.len());
        self.metrics_into(allocation, &mut out)?;
        Ok(out)
    }

    /// [`MetricsCache::metrics`] into a caller-owned buffer (cleared
    /// first) — the sweep's from-scratch path, refreshing every block.
    /// Projection keys are built in a scratch buffer and probed by
    /// slice; a key is only allocated when an entry is inserted
    /// (counted by [`MetricsCache::key_allocs`]).
    ///
    /// # Errors
    ///
    /// [`PaceError::Sched`] if a block's DFG cannot be scheduled at all.
    pub fn metrics_into(
        &mut self,
        allocation: &RMap,
        out: &mut Vec<BsbMetrics>,
    ) -> Result<(), PaceError> {
        out.clear();
        out.resize(self.bsbs.len(), infeasible_block_metrics(Cycles::ZERO));
        self.refresh(allocation, None, out)
    }

    /// Incrementally refreshes `out` — a previous candidate's complete
    /// metrics — for `allocation`, re-deriving only the blocks whose
    /// kind sets intersect `dirty_kinds` (the unit kinds whose counts
    /// changed since the metrics in `out` were computed). Untouched
    /// blocks are reused as-is: their projections cannot have changed,
    /// so their entries are still exactly what
    /// [`crate::compute_metrics`] would return. The dirty/clean split
    /// is counted by [`MetricsCache::dirty_probes`] and
    /// [`MetricsCache::clean_reuses`].
    ///
    /// # Errors
    ///
    /// [`PaceError::Sched`] if a block's DFG cannot be scheduled at all.
    ///
    /// # Panics
    ///
    /// Panics if `out` does not hold one entry per block — the buffer
    /// must come from an earlier [`MetricsCache::metrics_into`] /
    /// `step_into` over the same application.
    pub fn step_into(
        &mut self,
        allocation: &RMap,
        dirty_kinds: &[FuId],
        out: &mut [BsbMetrics],
    ) -> Result<(), PaceError> {
        assert_eq!(
            out.len(),
            self.bsbs.len(),
            "step_into refreshes a previous candidate's metrics"
        );
        self.refresh(allocation, Some(dirty_kinds), out)
    }

    /// The shared refresh loop: `dirty == None` re-derives every block
    /// (from-scratch), `Some(kinds)` only the blocks a dirty kind
    /// touches.
    fn refresh(
        &mut self,
        allocation: &RMap,
        dirty: Option<&[FuId]>,
        out: &mut [BsbMetrics],
    ) -> Result<(), PaceError> {
        if let Some(kinds) = dirty {
            self.generation += 1;
            for fu in kinds {
                if let Some(blocks) = self.by_kind.get(fu) {
                    for &b in blocks {
                        self.touched[b] = self.generation;
                    }
                }
            }
        }
        for (i, (bsb, stat)) in self.bsbs.iter().zip(&self.statics).enumerate() {
            if dirty.is_some() && self.touched[i] != self.generation {
                self.clean_reuses += 1;
                continue;
            }
            self.dirty_probes += 1;
            let feasible = stat.movable && allocation.covers(&stat.needed);
            if !feasible {
                out[i] = infeasible_block_metrics(stat.sw_time);
                continue;
            }
            allocation.project_into(&stat.kinds, &mut self.key_buf);
            if self.enabled {
                if let Some(&hit) = self.entries[i].get(self.key_buf.as_slice()) {
                    self.hits += 1;
                    out[i] = hit;
                    continue;
                }
            }
            self.misses += 1;
            // Counts restricted to the block's own kinds: the list
            // scheduler only ever looks those up, so the schedule is
            // identical to one under the full allocation.
            let counts: FuCounts = stat
                .kinds
                .iter()
                .zip(&self.key_buf)
                .map(|(&fu, &c)| (fu, c))
                .collect();
            let m = feasible_block_metrics(bsb, self.lib, &counts, stat.sw_time, self.config)?;
            if self.enabled {
                self.key_allocs += 1;
                self.entries[i].insert(self.key_buf.clone(), m);
            }
            out[i] = m;
        }
        Ok(())
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to run the list scheduler.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Projection keys allocated so far — one per insert, never per
    /// probe.
    pub fn key_allocs(&self) -> u64 {
        self.key_allocs
    }

    /// Block entries actually re-derived across all refreshes.
    pub fn dirty_probes(&self) -> u64 {
        self.dirty_probes
    }

    /// Block entries reused untouched by [`MetricsCache::step_into`].
    pub fn clean_reuses(&self) -> u64 {
        self.clean_reuses
    }
}

/// Mixed-radix odometer over the allocation space, with incremental
/// data-path area tracking. Dimension 0 is the least-significant digit,
/// matching the sequential walk of [`exhaustive_best`]: the point at
/// index `i` is the `i`-th allocation that walk visits.
struct Odometer {
    caps: Vec<u32>,
    fus: Vec<FuId>,
    unit_area: Vec<u64>,
    counts: Vec<u32>,
    area: u64,
    /// `weight[pos]` = number of points in a subtree fixing digits
    /// `pos..` (saturating for astronomically large spaces, which only
    /// makes the walk decline to skip such a subtree).
    weight: Vec<u128>,
}

/// `weights[pos]` = points in a subtree fixing digits `pos..` — the
/// cumulative radix products of the mixed-radix space (saturating for
/// astronomically large spaces). `weights[dims.len()]` is the space
/// size itself. Shared by the odometer and the work-stealing chunk
/// sizing, so chunk boundaries are guaranteed to be subtree roots.
fn subtree_weights(dims: &[(FuId, u32)]) -> Vec<u128> {
    let mut weight = Vec::with_capacity(dims.len() + 1);
    weight.push(1u128);
    for &(_, cap) in dims {
        let last = *weight.last().expect("starts non-empty");
        weight.push(last.saturating_mul(cap as u128 + 1));
    }
    weight
}

impl Odometer {
    /// The odometer positioned at `index` (`0 ≤ index < space size`).
    fn at(dims: &[(FuId, u32)], lib: &HwLibrary, index: u128) -> Odometer {
        let caps: Vec<u32> = dims.iter().map(|&(_, cap)| cap).collect();
        let fus: Vec<FuId> = dims.iter().map(|&(fu, _)| fu).collect();
        let unit_area: Vec<u64> = fus.iter().map(|&fu| lib.area_of(fu).gates()).collect();
        let weight = subtree_weights(dims);
        let mut rest = index;
        let mut counts = vec![0u32; dims.len()];
        for (c, &cap) in counts.iter_mut().zip(&caps) {
            let base = cap as u128 + 1;
            *c = (rest % base) as u32;
            rest /= base;
        }
        debug_assert_eq!(rest, 0, "index outside the space");
        let area = counts
            .iter()
            .zip(&unit_area)
            .map(|(&c, &a)| c as u64 * a)
            .sum();
        Odometer {
            caps,
            fus,
            unit_area,
            counts,
            area,
            weight,
        }
    }

    /// Advances to the next point; `false` once the space is exhausted.
    fn step(&mut self) -> bool {
        self.advance(0).is_some()
    }

    /// Advances past the subtree rooted at digit `from` (digits below
    /// `from` must be zero — they stay zero), carrying upward. Returns
    /// the highest digit position that changed, or `None` once the
    /// space is exhausted. `advance(0)` is a plain step.
    fn advance(&mut self, from: usize) -> Option<usize> {
        debug_assert!(
            self.counts[..from].iter().all(|&c| c == 0),
            "subtree skips start at a subtree root"
        );
        for pos in from..self.counts.len() {
            self.counts[pos] += 1;
            self.area += self.unit_area[pos];
            if self.counts[pos] <= self.caps[pos] {
                return Some(pos);
            }
            self.area -= self.unit_area[pos] * (self.caps[pos] as u64 + 1);
            self.counts[pos] = 0;
        }
        None
    }

    /// Number of least-significant zero digits — the current point is
    /// the root of subtrees at every level up to this.
    fn trailing_zeros(&self) -> usize {
        self.counts
            .iter()
            .position(|&c| c != 0)
            .unwrap_or(self.counts.len())
    }

    /// Points in a subtree fixing digits `pos..`.
    fn subtree_width(&self, pos: usize) -> u128 {
        self.weight[pos]
    }

    /// The unit kind of dimension `pos`.
    fn kind_at(&self, pos: usize) -> FuId {
        self.fus[pos]
    }

    /// The current point as a resource map (test-only: the sweep
    /// itself reuses one map via [`Odometer::write_rmap`]).
    #[cfg(test)]
    fn rmap(&self) -> RMap {
        let mut out = RMap::new();
        self.write_rmap(&mut out);
        out
    }

    /// Writes the current point into a reused resource map — the
    /// sweep's steady-state path, which updates one map in place
    /// instead of rebuilding a fresh `RMap` per candidate.
    fn write_rmap(&self, into: &mut RMap) {
        for (&fu, &c) in self.fus.iter().zip(&self.counts) {
            into.set(fu, c);
        }
    }

    /// Data-path area of the current point, in gate equivalents.
    fn area_gates(&self) -> u64 {
        self.area
    }
}

/// Granularity target of the truncation pre-walk's evaluable-count
/// histogram: enough chunks that range boundaries can balance work,
/// few enough that the histogram stays trivially small.
const PRE_WALK_CHUNKS: u128 = 4096;

/// What the cheap area-only pre-walk of a *limited* search learns:
/// where the truncation window ends, plus a coarse per-chunk histogram
/// of evaluable points inside it (for work-balanced range splits).
/// Full sweeps run no pre-walk and carry an empty histogram.
struct PreWalk {
    bound: u128,
    truncated: bool,
    chunk: u128,
    evaluable: Vec<u64>,
}

/// Pins where a limited search stops, before any partitioning runs.
///
/// The sequential walk evaluates the all-software point, then skips
/// area-infeasible candidates freely and truncates at the first
/// evaluable candidate past the limit. Walking the odometer with area
/// tracking alone (no scheduling) finds that exact index, so parallel
/// workers can cover `[0, bound)` and reproduce `evaluated`, `skipped`
/// and `truncated` bit-for-bit. The same walk tallies evaluable points
/// per index chunk, which later balances the worker ranges.
///
/// `want_histogram` is off when the sweep will schedule by
/// work-stealing: the dynamic scheduler balances load at run time, so
/// the histogram would be dead weight and the pre-walk only pins the
/// truncation point.
fn pre_walk(
    dims: &[(FuId, u32)],
    lib: &HwLibrary,
    total_gates: u64,
    space: u128,
    limit: Option<usize>,
    want_histogram: bool,
) -> PreWalk {
    let Some(limit) = limit else {
        return PreWalk {
            bound: space,
            truncated: false,
            chunk: 0,
            evaluable: Vec::new(),
        };
    };
    let chunk = (space / PRE_WALK_CHUNKS).max(1);
    let mut evaluable: Vec<u64> = Vec::new();
    let tally = |evaluable: &mut Vec<u64>, index: u128| {
        if !want_histogram {
            return;
        }
        let slot = (index / chunk) as usize;
        if evaluable.len() <= slot {
            evaluable.resize(slot + 1, 0);
        }
        evaluable[slot] += 1;
    };
    // The all-software point (index 0) is always evaluated, even under
    // `limit = 0`; truncation strikes the (limit+1)-th evaluable point.
    let target = limit.max(1) as u128 + 1;
    let mut odo = Odometer::at(dims, lib, 0);
    let mut count = 1u128;
    tally(&mut evaluable, 0);
    let mut index = 0u128;
    loop {
        if !odo.step() {
            return PreWalk {
                bound: space,
                truncated: false,
                chunk,
                evaluable,
            };
        }
        index += 1;
        if odo.area_gates() <= total_gates {
            count += 1;
            if count == target {
                // `index` is the first evaluable point *outside* the
                // window — not tallied, not covered.
                return PreWalk {
                    bound: index,
                    truncated: true,
                    chunk,
                    evaluable,
                };
            }
            tally(&mut evaluable, index);
        }
    }
}

/// Where a limited search stops — see [`pre_walk`], which this wraps
/// (kept as the historical seam the truncation unit tests pin).
#[cfg(test)]
fn truncation_bound(
    dims: &[(FuId, u32)],
    lib: &HwLibrary,
    total_gates: u64,
    space: u128,
    limit: Option<usize>,
) -> (u128, bool) {
    let pre = pre_walk(dims, lib, total_gates, space, limit, true);
    (pre.bound, pre.truncated)
}

/// Accumulated dirty unit-kind dimensions between two evaluated
/// candidates — everything the odometer changed since the worker's
/// metrics buffer was last refreshed.
struct DirtyKinds {
    flags: Vec<bool>,
    /// Everything is dirty (no previous candidate to step from).
    all: bool,
}

impl DirtyKinds {
    fn new(dims: usize) -> Self {
        DirtyKinds {
            flags: vec![false; dims],
            all: true,
        }
    }

    /// An odometer advance changed digits `..=pos`.
    fn mark_upto(&mut self, pos: usize) {
        for f in &mut self.flags[..=pos] {
            *f = true;
        }
    }

    fn clear(&mut self) {
        self.flags.fill(false);
        self.all = false;
    }

    /// Forgets the stepping history: the next evaluated point
    /// refreshes every block from scratch. A work-stealing worker
    /// re-seeds like this at every stolen chunk — the chunk start is
    /// not one odometer step from wherever the previous chunk ended.
    fn reset(&mut self) {
        self.flags.fill(false);
        self.all = true;
    }
}

/// "No shared incumbent yet" — also the packing of any `(time, area)`
/// pair too large to share (see [`pack_incumbent`]).
const NO_INCUMBENT: u64 = u64::MAX;

/// Packs a worker's best `(time, area)` into one `u64` — time in the
/// high 32 bits (major), area in the low 32 (minor) — so the `u64`
/// order *is* the strict `(time, area)` improvement order and workers
/// tighten each other with a single [`AtomicU64::fetch_min`]. Pairs
/// that do not fit 32 bits pack to [`NO_INCUMBENT`] (no information):
/// a saturated component would advertise an achievement no candidate
/// made and could prune the true winner.
fn pack_incumbent(time: u64, area: u64) -> u64 {
    if time >= u64::from(u32::MAX) || area >= u64::from(u32::MAX) {
        return NO_INCUMBENT;
    }
    (time << 32) | area
}

/// Inverse of [`pack_incumbent`]; `None` when nothing usable is shared.
fn unpack_incumbent(packed: u64) -> Option<(u64, u64)> {
    if packed == NO_INCUMBENT {
        None
    } else {
        Some((packed >> 32, packed & u64::from(u32::MAX)))
    }
}

/// Decides whether a subtree with admissible time bound `lb` and
/// minimal data-path area `min_area` can be skipped.
///
/// Against the worker's **own** incumbent (always an earlier index of
/// its own range) ties prune at equal-or-worse area too: a later
/// candidate equalling the incumbent never replaces it under the
/// strict improvement rule. Against the **shared** incumbent (any
/// worker, any index) pruning is stricter — equal `(time, area)` must
/// survive, because the earliest point achieving the global optimum
/// may sit in *this* worker's range and must reach the deterministic
/// reduce for the result to stay field-exact vs the sequential walk.
fn subtree_pruned(
    lb: u64,
    min_area: u64,
    own: Option<(u64, u64)>,
    shared: Option<(u64, u64)>,
) -> bool {
    if let Some((time, area)) = own {
        if lb > time || (lb >= time && min_area >= area) {
            return true;
        }
    }
    if let Some((time, area)) = shared {
        if lb > time || (lb >= time && min_area > area) {
            return true;
        }
    }
    false
}

/// One evaluated allocation, as the engine hands it to an
/// [`Objective`]: the candidate's identity (allocation, data-path
/// gates, odometer index) plus read access to the full area×time
/// trade-off row the PACE DP just computed, including on-demand
/// backtracks at any controller-area level.
pub struct CandidateEval<'w> {
    scratch: &'w DpScratch,
    metrics: &'w [BsbMetrics],
    allocation: &'w RMap,
    time: u64,
    gates: u64,
    index: u128,
    quantum: u64,
}

impl CandidateEval<'_> {
    /// Hybrid time under the full controller budget — the minimum of
    /// the whole trade-off row.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Data-path area of the allocation, in gate equivalents.
    pub fn gates(&self) -> u64 {
        self.gates
    }

    /// Odometer index of the candidate — the deterministic tie-break
    /// key reduces order by.
    pub fn index(&self) -> u128 {
        self.index
    }

    /// The allocation itself. Clone it to keep it: the reference is
    /// into the worker's reused candidate map, overwritten at the
    /// next point.
    pub fn allocation(&self) -> &RMap {
        self.allocation
    }

    /// Controller-area levels of the evaluated DP grid: the trade-off
    /// row spans `0..=levels()` quanta.
    pub fn levels(&self) -> usize {
        self.scratch.levels()
    }

    /// The DP area quantum in gates: level `a` is a controller budget
    /// of `a * quantum()` gates.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Hybrid time when the controller may spend at most `level`
    /// quanta — non-increasing in `level`, with
    /// `time_at_level(levels()) == time()`.
    pub fn time_at_level(&self, level: usize) -> u64 {
        self.scratch.final_row()[level]
    }

    /// Materialises the partition behind [`CandidateEval::time`].
    pub fn backtrack(&self) -> Partition {
        self.scratch.backtrack(self.metrics, Area::new(self.gates))
    }

    /// Materialises the partition behind
    /// [`CandidateEval::time_at_level`] — bit-identical to the
    /// backtrack a separate evaluation under a controller budget of
    /// `level` quanta would produce.
    pub fn backtrack_at_level(&self, level: usize) -> Partition {
        self.scratch
            .backtrack_at(self.metrics, Area::new(self.gates), level)
    }
}

/// The search engine's pluggable incumbent/record/reduce seam.
///
/// The generic sweep — odometer walk, memoised incremental metrics,
/// admissible branch-and-bound, static or work-stealing fan-out — is
/// objective-agnostic. What "improving" means, what workers share to
/// tighten each other's pruning, and how per-worker results reduce
/// into one deterministic answer all live behind this trait:
/// [`BestUnderBudget`] is the classic single-incumbent engine
/// ([`search_best`] exactly), [`ParetoFront`] keeps a dominance
/// frontier and emits the whole time×area curve in one sweep
/// ([`search_pareto`]).
///
/// # Pruning contract
///
/// [`Objective::prune`] may only return `true` for a subtree when no
/// point of it could change the reduced output. `lb` is an
/// *admissible* (never over-estimating) lower bound on the time of
/// every point in the subtree, and `min_area` a lower bound on every
/// point's data-path gates. Cross-worker state read from `Shared` is
/// racy by design: an implementation must keep its pruning sound and
/// its reduce deterministic under any interleaving.
pub trait Objective: Sync {
    /// Cross-worker state (the shared incumbent / frontier).
    type Shared: Sync;
    /// Per-worker state, moved into the reduce.
    type Local: Send;
    /// What [`Objective::reduce`] distils the locals into.
    type Output;

    /// Fresh shared state for one engine run.
    fn shared(&self) -> Self::Shared;

    /// Fresh per-worker state.
    fn local(&self) -> Self::Local;

    /// Installs a stored previous winner into the fresh shared state
    /// as the initial incumbent (warm-start reseeding), returning
    /// whether the seed was actually taken. The engine only offers
    /// seeds whose odometer index lies inside the current truncation
    /// window and only when bounding is on; an objective for which a
    /// foreign incumbent is unsound (or meaningless, like a frontier)
    /// keeps this default and reports `false`.
    fn seed_shared(&self, _shared: &Self::Shared, _seed: WarmSeed) -> bool {
        false
    }

    /// Whether a candidate whose evaluation is already known — `time`
    /// and `gates` served from a cross-request memo — may skip the DP
    /// *and* its [`Objective::record`] call entirely. Return `true`
    /// only when recording a candidate with this `(time, gates)`, at
    /// an index later than everything this local has recorded so far,
    /// would provably be a no-op (the tie-keeps-earliest rule makes
    /// equals non-improving). The default keeps every objective on the
    /// always-evaluate path; [`BestUnderBudget`] opts in with the
    /// exact comparison its `record` uses.
    fn cached_eval_skips(&self, _local: &Self::Local, _time: u64, _gates: u64) -> bool {
        false
    }

    /// The worker is about to jump to a non-adjacent index (a stolen
    /// chunk): refresh whatever view of `shared` the local caches.
    fn reseed(&self, _local: &mut Self::Local, _shared: &Self::Shared) {}

    /// Called once per bound-check round, before a batch of
    /// [`Objective::prune`] probes: refresh the local's cached view of
    /// `shared` here, so the hot per-subtree probes touch no shared
    /// memory.
    fn observe(&self, _local: &mut Self::Local, _shared: &Self::Shared) {}

    /// Whether a subtree with admissible time bound `lb` and minimal
    /// data-path gates `min_area` can be skipped wholesale.
    fn prune(&self, local: &Self::Local, lb: u64, min_area: u64) -> bool;

    /// An allocation was evaluated. `publish` is `true` when
    /// branch-and-bound is on — the one case where advertising
    /// progress cross-worker buys pruning.
    fn record(
        &self,
        local: &mut Self::Local,
        shared: &Self::Shared,
        publish: bool,
        eval: &CandidateEval<'_>,
    );

    /// Folds a worker's objective-specific telemetry into the run's
    /// [`SearchStats`].
    fn fold_stats(&self, _local: &Self::Local, _stats: &mut SearchStats) {}

    /// Deterministically reduces every worker's local state into the
    /// final output. Locals arrive in worker order, but a correct
    /// implementation must not depend on which worker saw which
    /// points — the scheduler hands them out in timing-dependent
    /// ways.
    fn reduce(&self, locals: Vec<Self::Local>) -> Self::Output;
}

/// The classic objective: the single best `(time, area)` candidate
/// under one area budget. This is [`search_best`]'s engine,
/// bit-identical to the historical hard-wired incumbent — including
/// the [`AtomicU64`]-packed cross-worker incumbent and the
/// lexicographic `(time, area, index)` reduce.
pub struct BestUnderBudget;

/// Cross-worker state of [`BestUnderBudget`]: the packed incumbent.
pub struct BestShared(AtomicU64);

/// Per-worker state of [`BestUnderBudget`].
#[derive(Default)]
pub struct BestLocal {
    /// Best candidate evaluated: allocation, partition, data-path
    /// gates, odometer index (the earliest point achieving the
    /// worker's minimal `(time, area)`).
    best: Option<(RMap, Partition, u64, u128)>,
    /// Own/shared incumbent views, cached once per bound round.
    own: Option<(u64, u64)>,
    inherited: Option<(u64, u64)>,
    /// Improving candidates whose pair could not pack — see
    /// [`SearchStats::unpacked_incumbents`].
    unpacked: u64,
}

impl Objective for BestUnderBudget {
    type Shared = BestShared;
    type Local = BestLocal;
    type Output = Option<(RMap, Partition, u64, u128)>;

    fn shared(&self) -> BestShared {
        BestShared(AtomicU64::new(NO_INCUMBENT))
    }

    fn local(&self) -> BestLocal {
        BestLocal::default()
    }

    // Sound because the seed is a point of this very space that every
    // worker's walk could (re)discover: the shared prune is strict-only
    // (`subtree_pruned`), so the subtree holding the seed itself — and
    // any point achieving a `(time, area)` no worse than it — still
    // reaches evaluation, and `record` never compares against shared
    // state, so the per-worker winner and the deterministic reduce are
    // untouched. A seed too large to pack is simply not installed.
    fn seed_shared(&self, shared: &BestShared, seed: WarmSeed) -> bool {
        let packed = pack_incumbent(seed.time, seed.gates);
        if packed == NO_INCUMBENT {
            return false;
        }
        shared.0.fetch_min(packed, Ordering::Relaxed);
        true
    }

    fn observe(&self, local: &mut BestLocal, shared: &BestShared) {
        local.own = local
            .best
            .as_ref()
            .map(|(_, p, area, _)| (p.total_time.count(), *area));
        local.inherited = unpack_incumbent(shared.0.load(Ordering::Relaxed));
    }

    // The exact negation of `record`'s improvement test: a served
    // candidate that would not improve this worker's best leaves
    // `record` a no-op (later index loses ties), so skipping the DP,
    // the metrics refresh and the call itself changes nothing.
    fn cached_eval_skips(&self, local: &BestLocal, time: u64, gates: u64) -> bool {
        match &local.best {
            None => false,
            Some((_, bp, barea, _)) => {
                !(time < bp.total_time.count() || (time == bp.total_time.count() && gates < *barea))
            }
        }
    }

    fn prune(&self, local: &BestLocal, lb: u64, min_area: u64) -> bool {
        subtree_pruned(lb, min_area, local.own, local.inherited)
    }

    fn record(
        &self,
        local: &mut BestLocal,
        shared: &BestShared,
        publish: bool,
        eval: &CandidateEval<'_>,
    ) {
        let (time, gates) = (eval.time(), eval.gates());
        let better = match &local.best {
            None => true,
            Some((_, bp, barea, _)) => {
                time < bp.total_time.count() || (time == bp.total_time.count() && gates < *barea)
            }
        };
        if better {
            let p = eval.backtrack();
            if publish {
                let packed = pack_incumbent(time, gates);
                if packed == NO_INCUMBENT {
                    local.unpacked += 1;
                }
                shared.0.fetch_min(packed, Ordering::Relaxed);
            }
            local.best = Some((eval.allocation().clone(), p, gates, eval.index()));
        }
    }

    fn fold_stats(&self, local: &BestLocal, stats: &mut SearchStats) {
        stats.unpacked_incumbents += local.unpacked;
    }

    fn reduce(&self, locals: Vec<BestLocal>) -> Self::Output {
        // Strict lexicographic (time, area, index) — the exact order
        // the sequential walk discovers winners in — so the reduce is
        // deterministic whatever scheduler handed points to workers:
        // ties keep the earliest odometer index.
        let mut best: Option<(RMap, Partition, u64, u128)> = None;
        for local in locals {
            if let Some((alloc, part, gates, index)) = local.best {
                let better = match &best {
                    None => true,
                    Some((_, bp, bgates, bindex)) => {
                        (part.total_time, gates, index) < (bp.total_time, *bgates, *bindex)
                    }
                };
                if better {
                    best = Some((alloc, part, gates, index));
                }
            }
        }
        best
    }
}

/// How many bound-check rounds a Pareto worker goes between refreshes
/// of its shared-frontier snapshot: rare enough that the mutex stays
/// cold, frequent enough that another worker's tightening still lands
/// while there are subtrees left to prune with it.
const SNAPSHOT_EVERY: u32 = 1024;

/// One recorded Pareto candidate point — a strict step of some
/// candidate's area×time trade-off row, with everything the reduce
/// needs to rebuild the winner deterministically.
struct ParetoEntry {
    time: u64,
    /// Minimal total area budget achieving `time` with this
    /// allocation: data-path gates plus the controller level times
    /// the area quantum.
    area: u64,
    /// Data-path gates alone — the second tie-break key (the
    /// per-budget exhaustive walk prefers smaller data paths at equal
    /// time).
    gates: u64,
    index: u128,
    allocation: RMap,
    partition: Partition,
}

/// Largest-area entry of an `(area, time)` staircase with area ≤
/// `min_area` — the area-conditional best time. Staircases are
/// area-ascending with strictly descending times, so every
/// smaller-area entry is strictly slower and one probe answers "what
/// time is already achieved within this area".
fn staircase_floor(points: &[(u64, u64)], min_area: u64) -> Option<(u64, u64)> {
    let n = points.partition_point(|&(area, _)| area <= min_area);
    (n > 0).then(|| points[n - 1])
}

/// Inserts `(area, time)` into a staircase, dropping weakly dominated
/// entries (keep-first on exact duplicates).
fn staircase_insert(points: &mut Vec<(u64, u64)>, area: u64, time: u64) {
    let s = points.partition_point(|&(a, _)| a < area);
    if s < points.len() && points[s].0 == area && points[s].1 <= time {
        return;
    }
    if s > 0 && points[s - 1].1 <= time {
        return;
    }
    let mut end = s;
    while end < points.len() && points[end].1 >= time {
        end += 1;
    }
    points.splice(s..end, [(area, time)]);
}

/// Inserts a candidate point into a worker's own frontier staircase,
/// materialising the expensive payload (allocation clone + backtrack)
/// only when the point actually goes in. Weakly dominated points are
/// rejected; an exact `(time, area)` tie keeps the lexicographically
/// smaller `(gates, index)` — precisely the per-budget exhaustive
/// walk's tie-break, which is what keeps the reduced frontier
/// field-exact against N single-budget runs.
fn frontier_insert(
    points: &mut Vec<ParetoEntry>,
    time: u64,
    area: u64,
    gates: u64,
    index: u128,
    make: impl FnOnce() -> (RMap, Partition),
) -> bool {
    let s = points.partition_point(|e| e.area < area);
    if s < points.len() && points[s].area == area {
        let e = &points[s];
        if e.time < time {
            return false;
        }
        if e.time == time {
            if (e.gates, e.index) <= (gates, index) {
                return false;
            }
            let (allocation, partition) = make();
            points[s] = ParetoEntry {
                time,
                area,
                gates,
                index,
                allocation,
                partition,
            };
            return true;
        }
        // Same area, strictly slower: falls to the removal below.
    }
    if s > 0 && points[s - 1].time <= time {
        return false;
    }
    let mut end = s;
    while end < points.len() && points[end].time >= time {
        end += 1;
    }
    let (allocation, partition) = make();
    points.splice(
        s..end,
        [ParetoEntry {
            time,
            area,
            gates,
            index,
            allocation,
            partition,
        }],
    );
    true
}

/// The multi-objective engine: one sweep emits the entire Pareto
/// frontier of the time×area trade-off, replacing N single-budget
/// sweeps — see [`search_pareto`].
///
/// Every evaluated candidate contributes the strict steps of its DP
/// trade-off row (the minimal controller areas at which its time
/// improves); workers keep mutually non-dominated points in a private
/// staircase and, under branch-and-bound, share a merged `(area,
/// time)` staircase to prune against. Own-frontier pruning is
/// tie-inclusive (an equal point at no more area recorded earlier
/// always wins the tie-break); shared-frontier pruning demands strict
/// domination, so exact cross-worker ties survive to the
/// deterministic reduce and the output is identical at any thread
/// count and scheduling policy.
pub struct ParetoFront;

/// Cross-worker state of [`ParetoFront`]: the merged `(area, time)`
/// staircase, behind a mutex — workers touch it only on publish and
/// every `SNAPSHOT_EVERY` (1024) bound rounds.
pub struct ParetoShared {
    frontier: Mutex<Vec<(u64, u64)>>,
}

impl ParetoShared {
    fn snapshot_into(&self, into: &mut Vec<(u64, u64)>) {
        // Poison-tolerant: the staircase is valid after every insert
        // (each `staircase_insert` call leaves it consistent), so a
        // panicking sibling worker must not poison the survivors —
        // the serve layer keeps answering around isolated panics.
        into.clone_from(&self.frontier.lock().unwrap_or_else(PoisonError::into_inner));
    }
}

/// Per-worker state of [`ParetoFront`].
pub struct ParetoLocal {
    /// The worker's own staircase: area-ascending, strictly
    /// time-descending, mutually non-dominated.
    points: Vec<ParetoEntry>,
    /// Last snapshot of the shared staircase.
    snapshot: Vec<(u64, u64)>,
    rounds: u32,
}

impl Objective for ParetoFront {
    type Shared = ParetoShared;
    type Local = ParetoLocal;
    type Output = Vec<ParetoPoint>;

    fn shared(&self) -> ParetoShared {
        ParetoShared {
            frontier: Mutex::new(Vec::new()),
        }
    }

    fn local(&self) -> ParetoLocal {
        ParetoLocal {
            points: Vec::new(),
            snapshot: Vec::new(),
            rounds: 0,
        }
    }

    fn reseed(&self, local: &mut ParetoLocal, shared: &ParetoShared) {
        shared.snapshot_into(&mut local.snapshot);
        local.rounds = 0;
    }

    fn observe(&self, local: &mut ParetoLocal, shared: &ParetoShared) {
        local.rounds += 1;
        if local.rounds >= SNAPSHOT_EVERY {
            local.rounds = 0;
            shared.snapshot_into(&mut local.snapshot);
        }
    }

    fn prune(&self, local: &ParetoLocal, lb: u64, min_area: u64) -> bool {
        // Every point of the subtree costs ≥ min_area gates and ≥ lb
        // cycles. An own entry within that area at no more time
        // weakly dominates them all, and being recorded earlier it
        // also wins any exact tie-break — prune on ties too.
        let n = local.points.partition_point(|e| e.area <= min_area);
        if n > 0 && local.points[n - 1].time <= lb {
            return true;
        }
        // A shared entry must *strictly* dominate: an exact
        // cross-worker tie may be the lexicographic winner and must
        // reach the reduce.
        if let Some((area, time)) = staircase_floor(&local.snapshot, min_area) {
            if time <= lb && (time < lb || area < min_area) {
                return true;
            }
        }
        false
    }

    fn record(
        &self,
        local: &mut ParetoLocal,
        shared: &ParetoShared,
        publish: bool,
        eval: &CandidateEval<'_>,
    ) {
        let gates = eval.gates();
        // Whole-candidate quick reject: if an earlier own entry
        // already achieves the candidate's best time within its
        // data-path gates, every step point is weakly dominated (and
        // loses the tie-break), so the row scan is pointless.
        let n = local.points.partition_point(|e| e.area <= gates);
        if n > 0 && local.points[n - 1].time <= eval.time() {
            return;
        }
        let quantum = eval.quantum();
        let mut fresh: Vec<(u64, u64)> = Vec::new();
        let mut prev = u64::MAX;
        for level in 0..=eval.levels() {
            let time = eval.time_at_level(level);
            if time >= prev {
                continue; // same time already available at less area
            }
            prev = time;
            let area = gates + level as u64 * quantum;
            // Strictly shared-dominated points can never reach the
            // final frontier (some worker keeps a dominator,
            // transitively): skip the backtrack.
            if let Some((sa, st)) = staircase_floor(&local.snapshot, area) {
                if st <= time && (st < time || sa < area) {
                    continue;
                }
            }
            let accepted =
                frontier_insert(&mut local.points, time, area, gates, eval.index(), || {
                    (eval.allocation().clone(), eval.backtrack_at_level(level))
                });
            if accepted {
                fresh.push((area, time));
            }
        }
        if publish && !fresh.is_empty() {
            let mut frontier = shared
                .frontier
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for &(area, time) in &fresh {
                staircase_insert(&mut frontier, area, time);
            }
            local.snapshot.clone_from(&frontier);
        }
    }

    fn reduce(&self, locals: Vec<ParetoLocal>) -> Vec<ParetoPoint> {
        // Deterministic skyline: order every surviving entry by
        // (time, area, gates, index) and keep each strict area
        // improvement as times grow. Per frontier point that keeps
        // the lexicographically smallest (gates, index) — exactly the
        // candidate a single-budget exhaustive run at that point's
        // area returns.
        let mut all: Vec<ParetoEntry> = locals.into_iter().flat_map(|l| l.points).collect();
        all.sort_by(|x, y| {
            (x.time, x.area, x.gates, x.index).cmp(&(y.time, y.area, y.gates, y.index))
        });
        let mut front: Vec<ParetoEntry> = Vec::new();
        let mut best_area = u64::MAX;
        for e in all {
            if e.area < best_area {
                best_area = e.area;
                front.push(e);
            }
        }
        front.reverse();
        front
            .into_iter()
            .map(|e| ParetoPoint {
                allocation: e.allocation,
                partition: e.partition,
                area: Area::new(e.area),
                index: e.index,
            })
            .collect()
    }
}

/// One point of the frontier [`search_pareto`] emits.
#[derive(Clone, Debug, PartialEq)]
pub struct ParetoPoint {
    /// The winning allocation at this point.
    pub allocation: RMap,
    /// Its partition — identical to what a single-budget run
    /// ([`search_best`] or the exhaustive walk) at
    /// [`ParetoPoint::area`] returns.
    pub partition: Partition,
    /// Minimal total area budget achieving this latency: data-path
    /// gates plus controller quanta
    /// (quantised by [`PaceConfig::quantum`]).
    pub area: Area,
    /// Odometer index of the winning allocation.
    pub index: u128,
}

impl ParetoPoint {
    /// Hybrid latency of this point.
    pub fn time(&self) -> Cycles {
        self.partition.total_time
    }
}

/// Outcome of [`search_pareto`]: the dominance frontier plus the same
/// accounting a [`SearchResult`] carries.
#[derive(Clone, Debug)]
pub struct ParetoResult {
    /// The frontier, area-ascending and therefore strictly
    /// time-descending: the first point is the cheapest (the
    /// all-software fallback, unless hardware is free), the last the
    /// fastest achievable within the sweep's total area.
    pub points: Vec<ParetoPoint>,
    /// Allocations actually evaluated (engine effort under `bound`).
    pub evaluated: usize,
    /// Area-infeasible allocations skipped.
    pub skipped: usize,
    /// Size of the full allocation space.
    pub space_size: u128,
    /// Whether an evaluation limit cut the sweep short.
    pub truncated: bool,
    /// Engine telemetry — not part of the result's identity.
    pub stats: SearchStats,
}

impl ParetoResult {
    /// Sum over every accounting bucket:
    /// `evaluated + skipped + bounded + truncated_points + unvisited`,
    /// always equal to [`ParetoResult::space_size`].
    pub fn points_accounted(&self) -> u128 {
        self.evaluated as u128
            + self.skipped as u128
            + self.stats.bounded
            + self.stats.truncated_points
            + self.stats.unvisited
    }

    /// How the sweep ended ([`SearchStats::completion`]): a `Complete`
    /// frontier is the exact dominance frontier of the space; a
    /// truncated one is the partial frontier over the points visited
    /// before the deadline or cancellation.
    pub fn completion(&self) -> Completion {
        self.stats.completion
    }
}

impl PartialEq for ParetoResult {
    /// Telemetry aside — two results are equal if they found the same
    /// frontier over the same space.
    fn eq(&self, other: &Self) -> bool {
        self.points == other.points
            && self.space_size == other.space_size
            && self.truncated == other.truncated
    }
}

/// What one worker brings back from the odometer indices it covered:
/// its objective-local state (incumbent, frontier, …) plus the engine
/// counters. The objective's per-point odometer indices make the
/// final reduce order-free: whatever scheduling policy handed points
/// to workers, the objective's deterministic order decides.
struct WorkerOut<L> {
    local: L,
    evaluated: usize,
    skipped: usize,
    bounded: u128,
    /// Chunks this worker took beyond its first (work-stealing only).
    steals: u64,
    hits: u64,
    misses: u64,
    key_allocs: u64,
    dirty_probes: u64,
    clean_reuses: u64,
    /// `(index, time)` of every DP this worker actually ran — the
    /// material [`SearchArtifacts::record_evals`] folds into the
    /// cross-request evaluation memo.
    recorded: Vec<(u128, u64)>,
    /// Why this worker stopped before exhausting its points, if it
    /// did; `None` means it covered everything it was handed.
    stopped: Option<StopReason>,
}

impl<L> WorkerOut<L> {
    fn new(local: L) -> Self {
        WorkerOut {
            local,
            evaluated: 0,
            skipped: 0,
            bounded: 0,
            steals: 0,
            hits: 0,
            misses: 0,
            key_allocs: 0,
            dirty_probes: 0,
            clean_reuses: 0,
            recorded: Vec::new(),
            stopped: None,
        }
    }
}

/// One sweep worker's whole private state: the memo cache, the
/// run-traffic memo, the DP scratch, the metrics buffer, the candidate
/// map and the bound chain — everything reused across every point the
/// worker visits, whether those points arrive as one static range or
/// as a sequence of stolen chunks. After warm-up a non-improving
/// evaluation performs no heap allocation at all (the winning
/// [`Partition`] is only materialised when a candidate actually
/// improves on the worker's best).
struct SweepWorker<'a, O: Objective> {
    bsbs: &'a BsbArray,
    lib: &'a HwLibrary,
    config: &'a PaceConfig,
    total_gates: u64,
    dims: &'a [(FuId, u32)],
    cache: MetricsCache<'a>,
    comm: CommCosts,
    scratch: DpScratch,
    metrics: Vec<BsbMetrics>,
    candidate: RMap,
    dirty: DirtyKinds,
    dirty_fus: Vec<FuId>,
    bounds: Option<&'a SearchBounds>,
    levels: Option<LevelState>,
    /// Cross-request evaluation memo for this exact budget, if a
    /// previous run over the same artifacts recorded one.
    eval_memo: Option<Arc<HashMap<u128, u64>>>,
    /// Whether evaluated times are collected for
    /// [`SearchArtifacts::record_evals`] — only when the artifacts
    /// are store-resident, so one-shot sweeps skip the bookkeeping.
    memoize: bool,
    objective: &'a O,
    shared: &'a O::Shared,
    /// Whether improving candidates should be advertised cross-worker
    /// — exactly when branch-and-bound is on.
    publish: bool,
    /// The run's stop signal: polled before every DP, between DP rows,
    /// and every [`STOP_CHECK_INTERVAL`] subtree-skip rounds.
    stop: &'a StopSignal,
    /// Countdown to the next polled stop check in the cheap pruning
    /// loop.
    stop_countdown: u32,
    out: WorkerOut<O::Local>,
}

impl<'a, O: Objective> SweepWorker<'a, O> {
    #[allow(clippy::too_many_arguments)] // internal seam of run_search
    fn new(
        bsbs: &'a BsbArray,
        lib: &'a HwLibrary,
        config: &'a PaceConfig,
        total_gates: u64,
        dims: &'a [(FuId, u32)],
        statics: Vec<BsbStatics>,
        comm: CommCosts,
        cache_enabled: bool,
        dp_threads: usize,
        simd: bool,
        bounds: Option<&'a SearchBounds>,
        eval_memo: Option<Arc<HashMap<u128, u64>>>,
        memoize: bool,
        objective: &'a O,
        shared: &'a O::Shared,
        stop: &'a StopSignal,
    ) -> Self {
        let mut scratch = DpScratch::with_dp_threads(dp_threads);
        scratch.set_simd(simd);
        SweepWorker {
            bsbs,
            lib,
            config,
            total_gates,
            dims,
            cache: MetricsCache::from_statics(bsbs, lib, config, statics, cache_enabled),
            comm,
            scratch,
            metrics: Vec::with_capacity(bsbs.len()),
            candidate: RMap::new(),
            dirty: DirtyKinds::new(dims.len()),
            dirty_fus: Vec::with_capacity(dims.len()),
            bounds,
            levels: bounds.map(LevelState::new),
            eval_memo,
            memoize,
            objective,
            shared,
            publish: bounds.is_some(),
            stop,
            stop_countdown: STOP_CHECK_INTERVAL,
            out: WorkerOut::new(objective.local()),
        }
    }

    /// Polls the stop signal directly, recording the reason on a trip.
    /// Used before every expensive step (a candidate's DP evaluation);
    /// free on never-signals.
    fn stop_tripped(&mut self) -> bool {
        if self.out.stopped.is_some() {
            return true;
        }
        if let Some(reason) = self.stop.check() {
            self.out.stopped = Some(reason);
            return true;
        }
        false
    }

    /// Forgets the incremental stepping state before jumping to a
    /// non-adjacent index: the metrics buffer refreshes from scratch
    /// and the bound chain re-derives every level. The memo caches,
    /// the objective's progress and the accounting survive — they are
    /// position independent (the objective merely refreshes its
    /// cross-worker view).
    fn reseed(&mut self) {
        self.dirty.reset();
        if let Some(levels) = self.levels.as_mut() {
            levels.invalidate_all();
        }
        self.objective.reseed(&mut self.out.local, self.shared);
    }

    /// Evaluates every point of `range`, exactly as the sequential
    /// walk would, accumulating into the worker's [`WorkerOut`]. With
    /// bounds present the walk is branch-and-bound: whole subtrees
    /// (and single hopeless leaves) the objective prunes against its
    /// incumbent/frontier are skipped and tallied in `bounded`, with
    /// cross-worker progress read and published through the
    /// objective's shared state. Ranges must arrive in increasing
    /// index order (both schedulers guarantee it), so the objective's
    /// own-progress tie pruning stays sound: everything it recorded
    /// sits at an earlier index than any point still ahead.
    ///
    /// Anytime: the walk polls the run's [`StopSignal`] before every
    /// candidate DP (and, throttled, in the subtree-skip loop); when
    /// it trips the worker returns immediately with
    /// [`WorkerOut::stopped`] set, leaving its unprocessed tail to the
    /// engine's `unvisited` accounting.
    fn walk(&mut self, range: Range<u128>) -> Result<(), PaceError> {
        if range.is_empty() {
            return Ok(());
        }
        let mut odo = Odometer::at(self.dims, self.lib, range.start);
        let mut index = range.start;
        'walk: while index < range.end {
            if self.stop_tripped() {
                return Ok(());
            }
            // Branch-and-bound: skip subtrees rooted here, largest
            // first, until none prunes. A subtree prunes when its
            // whole area is infeasible, or when the admissible bound
            // at its level cannot improve the incumbents; `pos == 0`
            // is the leaf check sparing the DP for an individually
            // hopeless candidate.
            if let (Some(bounds), Some(levels)) = (self.bounds, self.levels.as_mut()) {
                loop {
                    let gates = odo.area_gates();
                    self.objective.observe(&mut self.out.local, self.shared);
                    let mut skip = None;
                    for pos in (0..=odo.trailing_zeros()).rev() {
                        let width = odo.subtree_width(pos);
                        if width > range.end - index {
                            continue; // subtree leaks out of this range
                        }
                        let prune = if gates > self.total_gates {
                            // Every point of the subtree is
                            // area-infeasible (free digits only add
                            // area). Single points stay on the
                            // `skipped` path below.
                            pos > 0
                        } else {
                            let lb = levels.bound_at(bounds, pos, &odo.counts);
                            self.objective.prune(&self.out.local, lb, gates)
                        };
                        if prune {
                            skip = Some((pos, width));
                            break;
                        }
                    }
                    let Some((pos, width)) = skip else { break };
                    self.out.bounded += width;
                    index += width;
                    if index >= range.end {
                        break 'walk;
                    }
                    let changed = odo.advance(pos).expect("range ends within the space");
                    self.dirty.mark_upto(changed);
                    levels.invalidate_upto(changed);
                    // Throttled stop poll: skip rounds are ~100 ns, so
                    // only every STOP_CHECK_INTERVAL-th round reads
                    // the clock (inlined — `levels` holds a field
                    // borrow that rules out the helper method).
                    self.stop_countdown -= 1;
                    if self.stop_countdown == 0 {
                        self.stop_countdown = STOP_CHECK_INTERVAL;
                        if let Some(reason) = self.stop.check() {
                            self.out.stopped = Some(reason);
                            return Ok(());
                        }
                    }
                }
            }
            // Evaluate or skip the surviving point, exactly as the
            // exhaustive walk would.
            let gates = odo.area_gates();
            if gates > self.total_gates {
                self.out.skipped += 1;
            } else if self
                .eval_memo
                .as_ref()
                .and_then(|memo| memo.get(&index).copied())
                .is_some_and(|time| {
                    self.objective
                        .cached_eval_skips(&self.out.local, time, gates)
                })
            {
                // Cross-request memo hit on a candidate the objective
                // certifies non-improving: no metrics refresh, no DP,
                // no record — only the accounting. The dirty set keeps
                // accumulating so the next real evaluation refreshes
                // every block touched since.
                self.out.evaluated += 1;
            } else {
                odo.write_rmap(&mut self.candidate);
                if self.dirty.all {
                    self.cache
                        .metrics_into(&self.candidate, &mut self.metrics)?;
                } else {
                    self.dirty_fus.clear();
                    for (pos, &flag) in self.dirty.flags.iter().enumerate() {
                        if flag {
                            self.dirty_fus.push(odo.kind_at(pos));
                        }
                    }
                    self.cache
                        .step_into(&self.candidate, &self.dirty_fus, &mut self.metrics)?;
                }
                self.dirty.clear();
                let Some(time) = self.scratch.evaluate_stoppable(
                    self.bsbs,
                    &self.metrics,
                    &mut self.comm,
                    Area::new(self.total_gates - gates),
                    self.config,
                    self.stop,
                ) else {
                    // The signal tripped between DP rows: the point
                    // stays unvisited (neither evaluated nor
                    // recorded) and the worker stops here.
                    self.out.stopped = Some(self.stop.check().unwrap_or(StopReason::Deadline));
                    return Ok(());
                };
                self.out.evaluated += 1;
                if self.memoize {
                    self.out.recorded.push((index, time));
                }
                let eval = CandidateEval {
                    scratch: &self.scratch,
                    metrics: &self.metrics,
                    allocation: &self.candidate,
                    time,
                    gates,
                    index,
                    quantum: self.config.quantum,
                };
                self.objective
                    .record(&mut self.out.local, self.shared, self.publish, &eval);
            }
            index += 1;
            if index >= range.end {
                break;
            }
            let changed = odo.advance(0).expect("range ends within the space");
            self.dirty.mark_upto(changed);
            if let Some(levels) = self.levels.as_mut() {
                levels.invalidate_upto(changed);
            }
        }
        Ok(())
    }

    /// The worker's accumulated output, with the cache counters folded
    /// in.
    fn finish(mut self) -> WorkerOut<O::Local> {
        self.out.hits = self.cache.hits();
        self.out.misses = self.cache.misses();
        self.out.key_allocs = self.cache.key_allocs();
        self.out.dirty_probes = self.cache.dirty_probes();
        self.out.clean_reuses = self.cache.clean_reuses();
        self.out
    }
}

/// Static-split worker: one contiguous range, walked once. `statics`
/// and `comm` are clones of the artifacts' one-time precompute (the
/// traffic memo possibly pre-warmed by the store path).
#[allow(clippy::too_many_arguments)] // internal seam of run_search
fn sweep_range<O: Objective>(
    bsbs: &BsbArray,
    lib: &HwLibrary,
    config: &PaceConfig,
    total_gates: u64,
    dims: &[(FuId, u32)],
    range: Range<u128>,
    statics: Vec<BsbStatics>,
    comm: CommCosts,
    cache_enabled: bool,
    dp_threads: usize,
    simd: bool,
    bounds: Option<&SearchBounds>,
    eval_memo: Option<Arc<HashMap<u128, u64>>>,
    memoize: bool,
    objective: &O,
    shared: &O::Shared,
    stop: &StopSignal,
) -> Result<WorkerOut<O::Local>, PaceError> {
    let mut worker = SweepWorker::new(
        bsbs,
        lib,
        config,
        total_gates,
        dims,
        statics,
        comm,
        cache_enabled,
        dp_threads,
        simd,
        bounds,
        eval_memo,
        memoize,
        objective,
        shared,
        stop,
    );
    worker.walk(range)?;
    Ok(worker.finish())
}

/// How many chunks each work-stealing worker should see on average:
/// enough that a worker finishing a pruned-hollow chunk finds more
/// work, few enough that the per-chunk reseed (a from-scratch metrics
/// refresh and bound re-derivation) stays noise.
const STEAL_CHUNKS_PER_WORKER: u128 = 8;

/// Chunk width for the work-stealing scheduler: the *largest* subtree
/// weight of the space that still yields at least
/// [`STEAL_CHUNKS_PER_WORKER`] chunks per worker over `[0, bound)`.
/// Subtree-weight alignment matters: every chunk start is then a
/// subtree root with all digits below the chunk level at zero, so
/// wholesale subtree pruning inside a chunk works exactly as in the
/// static split. Degenerate windows smaller than the target fall back
/// to single-point chunks (weight 1 — the finest alignment there is).
fn steal_chunk_width(weights: &[u128], bound: u128, threads: usize) -> u128 {
    let target = (threads as u128)
        .saturating_mul(STEAL_CHUNKS_PER_WORKER)
        .max(1);
    let mut width = 1u128;
    for &w in weights {
        // Weights are nondecreasing cumulative products; keep the
        // largest one that still meets the chunk-count target.
        if w > 0 && bound.div_ceil(w) >= target {
            width = width.max(w);
        }
    }
    width
}

/// Work-stealing worker: takes subtree-aligned chunks of `width`
/// indices off the shared `cursor` until the window `[0, bound)` is
/// exhausted, reseeding its incremental state at every non-first
/// chunk. Chunk indices are taken in increasing order (the cursor only
/// grows), so the worker's own-best tie pruning stays sound, and every
/// index of the window lands in exactly one worker's chunks — the
/// accounting identity is preserved chunk by chunk.
#[allow(clippy::too_many_arguments)] // internal seam of run_search
fn sweep_chunks<O: Objective>(
    bsbs: &BsbArray,
    lib: &HwLibrary,
    config: &PaceConfig,
    total_gates: u64,
    dims: &[(FuId, u32)],
    bound: u128,
    width: u128,
    cursor: &AtomicU64,
    statics: Vec<BsbStatics>,
    comm: CommCosts,
    cache_enabled: bool,
    dp_threads: usize,
    simd: bool,
    bounds: Option<&SearchBounds>,
    eval_memo: Option<Arc<HashMap<u128, u64>>>,
    memoize: bool,
    objective: &O,
    shared: &O::Shared,
    stop: &StopSignal,
) -> Result<WorkerOut<O::Local>, PaceError> {
    let mut worker = SweepWorker::new(
        bsbs,
        lib,
        config,
        total_gates,
        dims,
        statics,
        comm,
        cache_enabled,
        dp_threads,
        simd,
        bounds,
        eval_memo,
        memoize,
        objective,
        shared,
        stop,
    );
    let mut taken = 0u64;
    loop {
        let chunk = u128::from(cursor.fetch_add(1, Ordering::Relaxed));
        let start = chunk.saturating_mul(width);
        if start >= bound {
            break;
        }
        if taken > 0 {
            worker.reseed();
        }
        taken += 1;
        worker.walk(start..(start + width).min(bound))?;
        if worker.out.stopped.is_some() {
            // A tripped signal ends the chunk loop too: chunks the
            // cursor already moved past this one stay with their
            // owners, everything else lands in `unvisited`.
            break;
        }
    }
    worker.out.steals = taken.saturating_sub(1);
    Ok(worker.finish())
}

/// `bound` points split into at most `threads` contiguous ranges of
/// near-equal size, in odometer order.
///
/// Invariants (pinned by unit tests across the degenerate corners —
/// `bound == 0`, `threads > bound`, `bound` at the `u128` limit):
/// the ranges are non-empty, non-overlapping, contiguous from `0`,
/// and their lengths sum to exactly `bound`; `bound == 0` yields no
/// ranges at all. `start + len` never overflows because every prefix
/// sum of lengths is bounded by `bound` itself.
fn split_ranges(bound: u128, threads: usize) -> Vec<Range<u128>> {
    let threads = threads.max(1) as u128;
    let base = bound / threads;
    let extra = bound % threads;
    let mut ranges = Vec::new();
    let mut start = 0u128;
    for w in 0..threads {
        let len = base + u128::from(w < extra);
        if len == 0 {
            break;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// [`split_ranges`], but balancing the *evaluable* points the
/// truncation pre-walk counted per chunk instead of raw index width,
/// so a worker handed a skip-heavy prefix is not starved of real work.
/// Boundaries land on chunk edges; the split still covers `[0, bound)`
/// contiguously with at most `threads` non-empty ranges, so the
/// deterministic reduce (and therefore the result) is unaffected —
/// only the load balance changes. Falls back to the width split when
/// no histogram is available (full sweeps run no pre-walk).
fn split_ranges_weighted(
    bound: u128,
    threads: usize,
    evaluable: &[u64],
    chunk: u128,
) -> Vec<Range<u128>> {
    if bound == 0 {
        return Vec::new();
    }
    let threads = threads.max(1);
    if threads == 1 || chunk == 0 || evaluable.is_empty() {
        return split_ranges(bound, threads);
    }
    // Chunks are sized off the full space, but the truncation window
    // can be far smaller — a window spanning too few chunks cannot be
    // cut for every worker (boundaries land on chunk edges), which
    // would silently collapse the fan-out. Fall back to the width
    // split unless each worker can get a couple of chunks.
    if bound / chunk < threads as u128 * 2 {
        return split_ranges(bound, threads);
    }
    let total: u64 = evaluable.iter().sum();
    if total == 0 {
        return split_ranges(bound, threads);
    }
    let mut ranges: Vec<Range<u128>> = Vec::with_capacity(threads);
    let mut start = 0u128;
    let mut acc = 0u128;
    for (i, &count) in evaluable.iter().enumerate() {
        acc += u128::from(count);
        let end = (i as u128 + 1).saturating_mul(chunk).min(bound);
        // Cut at this chunk edge once the accumulated work reaches the
        // next worker's fair share.
        if ranges.len() + 1 < threads
            && acc * threads as u128 >= u128::from(total) * (ranges.len() as u128 + 1)
            && end > start
            && end < bound
        {
            ranges.push(start..end);
            start = end;
        }
    }
    ranges.push(start..bound);
    ranges
}

/// Hard cap on sweep workers: beyond this, thread spawn/join overhead
/// dwarfs any split benefit on every machine this could run on.
const MAX_THREADS: usize = 1024;

/// The machine's available parallelism, at least 1.
fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// [`effective_threads`] with an explicit core count (testable).
fn effective_threads_with(requested: usize, bound: u128, available: usize) -> usize {
    let t = if requested == 0 { available } else { requested };
    t.clamp(1, bound.clamp(1, MAX_THREADS as u128) as usize)
}

/// Resolves the worker count: `0` = available parallelism, never more
/// workers than points, and never more than [`MAX_THREADS`]. A
/// degenerate `bound == 0` still resolves to one worker, so the caller
/// always gets a well-formed (possibly empty) range split.
/// ([`SearchOptions::resolve`] is the production entry; this direct
/// form is what its unit tests pin.)
#[cfg(test)]
fn effective_threads(requested: usize, bound: u128) -> usize {
    effective_threads_with(requested, bound, available_parallelism())
}

/// Memoised, optionally parallel, optionally bound-driven search —
/// result-identical to [`exhaustive_best`](crate::exhaustive_best)
/// (same best allocation and partition, same
/// `evaluated`/`skipped`/`truncated` accounting), but with per-BSB
/// schedules cached and stepped incrementally across candidates and
/// the odometer range fanned out over scoped worker threads. With
/// [`SearchOptions::bound`] on, admissible lower bounds additionally
/// skip whole subtrees; the winner stays field-exact while
/// `evaluated`/`skipped`/[`SearchStats::bounded`] become engine-effort
/// telemetry.
///
/// Whatever the engine configuration, every point of the space lands
/// in exactly one accounting bucket:
/// `evaluated + skipped + stats.bounded + stats.truncated_points`
/// equals `space_size`.
///
/// # Errors
///
/// Propagates [`PaceError`] from partition evaluation, as the
/// sequential walk does.
///
/// # Examples
///
/// ```
/// use lycos_core::Restrictions;
/// use lycos_hwlib::{Area, HwLibrary};
/// use lycos_ir::{extract_bsbs, Cdfg, CdfgNode, DfgBuilder, OpKind, TripCount};
/// use lycos_pace::{exhaustive_best, search_best, PaceConfig, SearchOptions};
///
/// let mut b = DfgBuilder::new();
/// let m = b.binary(OpKind::Mul, "a".into(), "b".into());
/// b.assign("x", m);
/// let m2 = b.binary(OpKind::Mul, "c".into(), "d".into());
/// b.assign("y", m2);
/// let cdfg = Cdfg::new(
///     "hot",
///     CdfgNode::Loop {
///         label: "l".into(),
///         test: None,
///         body: Box::new(CdfgNode::block("body", b.finish())),
///         trip: TripCount::Fixed(400),
///     },
/// );
/// let bsbs = extract_bsbs(&cdfg, None)?;
/// let lib = HwLibrary::standard();
/// let restr = Restrictions::from_asap(&bsbs, &lib)?;
/// let config = PaceConfig::standard();
/// let area = Area::new(6000);
///
/// let fast = search_best(&bsbs, &lib, area, &restr, &config,
///                        &SearchOptions::new().threads(2))?;
/// let slow = exhaustive_best(&bsbs, &lib, area, &restr, &config, None)?;
/// assert_eq!(fast, slow, "telemetry aside, the results are identical");
/// assert!(fast.stats.cache_misses > 0);
///
/// // Branch-and-bound: the winner is field-exact, the effort smaller.
/// let bounded = search_best(&bsbs, &lib, area, &restr, &config,
///                           &SearchOptions::new().bound(true))?;
/// assert_eq!(bounded.best_allocation, slow.best_allocation);
/// assert_eq!(bounded.best_partition, slow.best_partition);
/// assert_eq!(bounded.points_accounted(), bounded.space_size);
/// // Never flakes: with at least one evaluation the rate is +∞ when
/// // the wall clock reads zero (see `SearchResult::eval_rate`).
/// assert!(fast.eval_rate() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn search_best(
    bsbs: &BsbArray,
    lib: &HwLibrary,
    total_area: Area,
    restrictions: &Restrictions,
    config: &PaceConfig,
    options: &SearchOptions,
) -> Result<SearchResult, PaceError> {
    let artifacts = SearchArtifacts::prepare(bsbs, lib, restrictions, config)?;
    search_best_with(bsbs, lib, total_area, config, options, &artifacts, &[])
}

/// [`search_best`] over artifacts prepared (or fetched from an
/// [`ArtifactStore`](crate::ArtifactStore)) elsewhere — the seam every
/// store-owning layer calls. `seeds` are previously recorded winners
/// offered for warm-start reseeding: each seed whose odometer index
/// lies inside the truncation window is installed as an initial shared
/// incumbent (when [`SearchOptions::bound`] is on), which can only
/// tighten pruning — the result is field-identical to a cold run with
/// `&[]`, pinned by the warm/cold equivalence proptests. Callers must
/// only offer seeds that are points of *this* search's space with a
/// data-path area within the current budget (the store's
/// budget-filtered `warm_seeds` guarantees it).
///
/// # Errors
///
/// Propagates [`PaceError`] as [`search_best`] does.
pub fn search_best_with(
    bsbs: &BsbArray,
    lib: &HwLibrary,
    total_area: Area,
    config: &PaceConfig,
    options: &SearchOptions,
    artifacts: &SearchArtifacts,
    seeds: &[WarmSeed],
) -> Result<SearchResult, PaceError> {
    search_best_with_stop(
        bsbs,
        lib,
        total_area,
        config,
        options,
        artifacts,
        seeds,
        &StopSignal::never(),
    )
}

/// [`search_best_with`] under an external [`StopSignal`] — the
/// anytime entry point the serve layer drives. The signal is folded
/// with [`SearchOptions::deadline_ms`] (earliest deadline wins); when
/// it trips, every worker stops cleanly at its next check, the
/// deterministic reduce runs over whatever was visited, and the
/// result's [`SearchStats::completion`] reports how the run ended.
///
/// The anytime contract: whatever the signal does, the returned
/// winner is a *feasible, DP-exact* point of the space — the best one
/// visited before the stop. If the signal tripped before any worker
/// evaluated anything, the always-feasible all-software point is
/// evaluated directly and returned, so the incumbent is never empty.
/// A signal that never trips leaves the result bit-identical to
/// [`search_best_with`].
///
/// # Errors
///
/// Propagates [`PaceError`] as [`search_best`] does.
#[allow(clippy::too_many_arguments)] // the _with seam plus the stop signal
pub fn search_best_with_stop(
    bsbs: &BsbArray,
    lib: &HwLibrary,
    total_area: Area,
    config: &PaceConfig,
    options: &SearchOptions,
    artifacts: &SearchArtifacts,
    seeds: &[WarmSeed],
    stop: &StopSignal,
) -> Result<SearchResult, PaceError> {
    let mut run = run_search(
        bsbs,
        lib,
        total_area,
        config,
        options,
        &BestUnderBudget,
        artifacts,
        seeds,
        stop,
    )?;
    let (best_allocation, best_partition, best_gates, best_index) = match run.output {
        Some(winner) => winner,
        None => {
            // Only a tripped stop signal can leave the reduce empty
            // (a complete run always evaluates the all-software
            // point). The anytime contract still promises a feasible,
            // DP-exact incumbent: evaluate the all-software point
            // directly and move it out of the unvisited bucket.
            debug_assert!(
                !run.stats.completion.is_complete(),
                "a complete run always evaluates at least one candidate"
            );
            let partition = crate::partition(bsbs, lib, &RMap::new(), total_area, config)?;
            run.evaluated += 1;
            debug_assert!(run.stats.unvisited >= 1);
            run.stats.unvisited = run.stats.unvisited.saturating_sub(1);
            (RMap::new(), partition, 0, 0)
        }
    };
    Ok(SearchResult {
        best_allocation,
        best_partition,
        best_gates,
        best_index,
        evaluated: run.evaluated,
        skipped: run.skipped,
        space_size: run.space_size,
        truncated: run.truncated,
        stats: run.stats,
    })
}

/// One multi-objective sweep emitting the entire Pareto frontier of
/// the time×area trade-off within `total_area` — the answer N
/// single-budget [`search_best`] calls (one per frontier area) would
/// assemble, from one walk of the allocation space.
///
/// Each frontier point's allocation *and partition* are field-exact
/// against a single-budget exhaustive run at that point's area, with
/// the same `(time, area)` then smallest-data-path, earliest-index
/// tie-breaks; the frontier is identical at any thread count, with
/// branch-and-bound on or off, and under either scheduling policy.
/// Every engine knob of [`SearchOptions`] applies: with
/// [`SearchOptions::bound`] on, subtrees are pruned against the
/// frontier's area-conditional best time (still admissible — a
/// subtree is only skipped when a recorded point at no more area is
/// already at least as fast as the subtree's admissible time bound),
/// and with [`SearchOptions::limit`] the candidate window truncates
/// exactly as in [`search_best`] (the frontier is then the frontier
/// *of the window*).
///
/// The accounting identity holds as for [`search_best`]:
/// `evaluated + skipped + stats.bounded + stats.truncated_points`
/// equals `space_size`.
///
/// # Errors
///
/// Propagates [`PaceError`] from partition evaluation, as the
/// sequential walk does.
///
/// # Examples
///
/// ```
/// use lycos_core::Restrictions;
/// use lycos_hwlib::{Area, HwLibrary};
/// use lycos_ir::{extract_bsbs, Cdfg, CdfgNode, DfgBuilder, OpKind, TripCount};
/// use lycos_pace::{search_best, search_pareto, PaceConfig, SearchOptions};
///
/// let mut b = DfgBuilder::new();
/// let m = b.binary(OpKind::Mul, "a".into(), "b".into());
/// b.assign("x", m);
/// let cdfg = Cdfg::new(
///     "hot",
///     CdfgNode::Loop {
///         label: "l".into(),
///         test: None,
///         body: Box::new(CdfgNode::block("body", b.finish())),
///         trip: TripCount::Fixed(400),
///     },
/// );
/// let bsbs = extract_bsbs(&cdfg, None)?;
/// let lib = HwLibrary::standard();
/// let restr = Restrictions::from_asap(&bsbs, &lib)?;
/// let config = PaceConfig::standard();
/// let area = Area::new(6000);
///
/// let front = search_pareto(&bsbs, &lib, area, &restr, &config,
///                           &SearchOptions::new().bound(true))?;
/// // Area-ascending, strictly time-descending — a real frontier.
/// assert!(!front.points.is_empty());
/// for w in front.points.windows(2) {
///     assert!(w[0].area < w[1].area && w[0].time() > w[1].time());
/// }
/// // Its fastest point is exactly the single-budget winner at the
/// // full budget.
/// let best = search_best(&bsbs, &lib, area, &restr, &config,
///                        &SearchOptions::default())?;
/// let fastest = front.points.last().unwrap();
/// assert_eq!(fastest.partition, best.best_partition);
/// assert_eq!(fastest.allocation, best.best_allocation);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn search_pareto(
    bsbs: &BsbArray,
    lib: &HwLibrary,
    total_area: Area,
    restrictions: &Restrictions,
    config: &PaceConfig,
    options: &SearchOptions,
) -> Result<ParetoResult, PaceError> {
    let artifacts = SearchArtifacts::prepare(bsbs, lib, restrictions, config)?;
    search_pareto_with(bsbs, lib, total_area, config, options, &artifacts)
}

/// [`search_pareto`] over artifacts prepared (or fetched from an
/// [`ArtifactStore`](crate::ArtifactStore)) elsewhere. A frontier has
/// no single incumbent to reseed, so there is no seed parameter — the
/// warm win here is reusing the statics, traffic memo and bound
/// tables.
///
/// # Errors
///
/// Propagates [`PaceError`] as [`search_pareto`] does.
pub fn search_pareto_with(
    bsbs: &BsbArray,
    lib: &HwLibrary,
    total_area: Area,
    config: &PaceConfig,
    options: &SearchOptions,
    artifacts: &SearchArtifacts,
) -> Result<ParetoResult, PaceError> {
    search_pareto_with_stop(
        bsbs,
        lib,
        total_area,
        config,
        options,
        artifacts,
        &StopSignal::never(),
    )
}

/// [`search_pareto_with`] under an external [`StopSignal`] (folded
/// with [`SearchOptions::deadline_ms`], earliest deadline wins). On a
/// trip the result is the *partial* frontier of everything visited —
/// every point on it is feasible and DP-exact, but points a longer
/// run would have found may be missing. If the signal tripped before
/// anything was evaluated, the always-feasible all-software point is
/// evaluated directly so the frontier is never empty. A signal that
/// never trips is bit-identical to [`search_pareto_with`].
///
/// # Errors
///
/// Propagates [`PaceError`] as [`search_pareto`] does.
pub fn search_pareto_with_stop(
    bsbs: &BsbArray,
    lib: &HwLibrary,
    total_area: Area,
    config: &PaceConfig,
    options: &SearchOptions,
    artifacts: &SearchArtifacts,
    stop: &StopSignal,
) -> Result<ParetoResult, PaceError> {
    let mut run = run_search(
        bsbs,
        lib,
        total_area,
        config,
        options,
        &ParetoFront,
        artifacts,
        &[],
        stop,
    )?;
    if run.output.is_empty() {
        // Stopped before any candidate was evaluated: anchor the
        // partial frontier with the always-feasible all-software
        // point (area 0 — the same first point every complete
        // frontier carries) and move it out of the unvisited bucket.
        debug_assert!(
            !run.stats.completion.is_complete(),
            "a complete frontier always carries the all-software point"
        );
        let partition = crate::partition(bsbs, lib, &RMap::new(), total_area, config)?;
        run.output.push(ParetoPoint {
            allocation: RMap::new(),
            partition,
            area: Area::new(0),
            index: 0,
        });
        run.evaluated += 1;
        debug_assert!(run.stats.unvisited >= 1);
        run.stats.unvisited = run.stats.unvisited.saturating_sub(1);
    }
    Ok(ParetoResult {
        points: run.output,
        evaluated: run.evaluated,
        skipped: run.skipped,
        space_size: run.space_size,
        truncated: run.truncated,
        stats: run.stats,
    })
}

/// What the generic engine hands its public wrappers: the objective's
/// reduced output plus the engine accounting.
struct EngineRun<T> {
    output: T,
    evaluated: usize,
    skipped: usize,
    space_size: u128,
    truncated: bool,
    stats: SearchStats,
}

/// The objective-generic engine behind [`search_best`] and
/// [`search_pareto`]: truncation pre-walk, artifact-backed
/// precomputes, warm-seed installation, static or work-stealing
/// fan-out, per-worker accounting and the objective's deterministic
/// reduce. The caller's [`StopSignal`] — tightened by
/// [`SearchOptions::deadline_ms`], earliest deadline first — is
/// threaded to every worker; points no worker reached before a trip
/// are tallied centrally as [`SearchStats::unvisited`], closing the
/// five-bucket accounting identity.
#[allow(clippy::too_many_arguments)] // internal seam of the _with wrappers
fn run_search<O: Objective>(
    bsbs: &BsbArray,
    lib: &HwLibrary,
    total_area: Area,
    config: &PaceConfig,
    options: &SearchOptions,
    objective: &O,
    artifacts: &SearchArtifacts,
    seeds: &[WarmSeed],
    stop: &StopSignal,
) -> Result<EngineRun<O::Output>, PaceError> {
    let started = Instant::now();
    let stop = stop.with_deadline_ms(options.deadline_ms);
    let stop = &stop;
    let dims = artifacts.dims();
    let space = artifacts.space_size();
    let total_gates = total_area.gates();
    // Work-stealing balances load at run time, so its pre-walk only
    // pins the truncation point and skips the histogram the static
    // split would balance ranges with.
    let pre = pre_walk(dims, lib, total_gates, space, options.limit, !options.steal);
    let (bound, truncated) = (pre.bound, pre.truncated);
    // The all-software point (index 0) is always inside the bound —
    // `pre_walk` returns ≥ 1 even under `limit = 0`, and an empty
    // dimension list still spans one point — so the reduce below
    // always sees at least one evaluated candidate.
    debug_assert!(bound >= 1, "search bound excludes the all-SW point");
    let (threads, dp_threads) = options.resolve(bound);
    let steal = options.steal && threads > 1;

    // The artifacts carry the sweep's one-time precomputes: per-block
    // statics (software times, required resources, kind sets) and the
    // run-traffic memo — workers get clones, small flat vectors,
    // instead of re-deriving them. On the compat path the memo is
    // empty and stays lazy per worker (eagerly filling the O(L²)
    // table costs more than a short sweep spends on traffic); the
    // store path hands it in pre-warmed. The bound tables are built
    // lazily inside the artifacts and shared read-only; with
    // `bound_comm` on they fold in the admissible communication floor.
    let bounds = if options.bound {
        Some(artifacts.bounds_for(bsbs, lib, config, options.bound_comm)?)
    } else {
        None
    };
    let shared = objective.shared();
    // Warm-start: install stored previous winners as the initial
    // shared incumbent. Only sound seeds are offered (points of this
    // space within the current budget — the caller's contract), and
    // only ones inside the truncation window are taken: a seed past
    // the window describes a point this walk would never visit, so its
    // `(time, area)` is not an outcome the window's exhaustive
    // reference could produce. Shared state is only ever read for
    // pruning, so without `bound` seeding would be inert — skip it and
    // keep the telemetry honest.
    let mut warm_reseeded = false;
    if options.bound {
        for seed in seeds {
            if seed.index < bound {
                warm_reseeded |= objective.seed_shared(&shared, *seed);
            }
        }
    }

    // Cross-request evaluation memo for this exact budget: served
    // candidates the objective certifies non-improving skip the DP
    // outright; everything actually evaluated is recorded back. Both
    // directions ride the `warm` knob (so `--no-warm` runs are fully
    // cold and leave no trace) and require store-resident artifacts —
    // a one-shot sweep's recordings could never be read back, so it
    // skips the bookkeeping entirely.
    let memoize = options.warm && artifacts.store_resident();
    let eval_memo = if memoize {
        artifacts.eval_memo(total_gates)
    } else {
        None
    };

    let outs: Vec<Result<WorkerOut<O::Local>, PaceError>> = if steal {
        let width = steal_chunk_width(&subtree_weights(dims), bound, threads);
        let cursor = AtomicU64::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let statics = artifacts.statics.clone();
                    let comm = artifacts.comm_clone();
                    let eval_memo = eval_memo.clone();
                    let (shared, cursor) = (&shared, &cursor);
                    scope.spawn(move || {
                        sweep_chunks(
                            bsbs,
                            lib,
                            config,
                            total_gates,
                            dims,
                            bound,
                            width,
                            cursor,
                            statics,
                            comm,
                            options.cache,
                            dp_threads,
                            options.simd,
                            bounds,
                            eval_memo,
                            memoize,
                            objective,
                            shared,
                            stop,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("search worker panicked"))
                .collect()
        })
    } else {
        let ranges = split_ranges_weighted(bound, threads, &pre.evaluable, pre.chunk);
        if ranges.len() <= 1 {
            vec![sweep_range(
                bsbs,
                lib,
                config,
                total_gates,
                dims,
                0..bound,
                artifacts.statics.clone(),
                artifacts.comm_clone(),
                options.cache,
                dp_threads,
                options.simd,
                bounds,
                eval_memo.clone(),
                memoize,
                objective,
                &shared,
                stop,
            )]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .iter()
                    .map(|range| {
                        let range = range.clone();
                        let statics = artifacts.statics.clone();
                        let comm = artifacts.comm_clone();
                        let eval_memo = eval_memo.clone();
                        let shared = &shared;
                        scope.spawn(move || {
                            sweep_range(
                                bsbs,
                                lib,
                                config,
                                total_gates,
                                dims,
                                range,
                                statics,
                                comm,
                                options.cache,
                                dp_threads,
                                options.simd,
                                bounds,
                                eval_memo,
                                memoize,
                                objective,
                                shared,
                                stop,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("search worker panicked"))
                    .collect()
            })
        }
    };

    let mut evaluated = 0usize;
    let mut skipped = 0usize;
    let mut stats = SearchStats {
        threads: if steal { threads } else { outs.len().max(1) },
        truncated_points: space - bound,
        warm_reseeded,
        ..SearchStats::default()
    };
    let mut locals = Vec::with_capacity(outs.len());
    let mut recorded = Vec::new();
    let mut stop_reason: Option<StopReason> = None;
    for out in outs {
        let mut out = out?;
        evaluated += out.evaluated;
        skipped += out.skipped;
        stats.bounded += out.bounded;
        stats.steals += out.steals;
        stats.cache_hits += out.hits;
        stats.cache_misses += out.misses;
        stats.key_allocs += out.key_allocs;
        stats.dirty_probes += out.dirty_probes;
        stats.clean_reuses += out.clean_reuses;
        objective.fold_stats(&out.local, &mut stats);
        recorded.append(&mut out.recorded);
        locals.push(out.local);
        // Cancellation outranks a deadline: an explicitly cancelled
        // run reports `Cancelled` even if its deadline also expired
        // on some other worker.
        match out.stopped {
            Some(StopReason::Cancelled) => stop_reason = Some(StopReason::Cancelled),
            Some(StopReason::Deadline) => {
                stop_reason = Some(stop_reason.unwrap_or(StopReason::Deadline));
            }
            None => {}
        }
    }
    if memoize {
        artifacts.record_evals(total_gates, recorded);
    }
    // The objective's reduce is deterministic whatever scheduler
    // handed points to workers — ties resolve by odometer index, the
    // exact order the sequential walk discovers winners in.
    let output = objective.reduce(locals);
    stats.completion = match stop_reason {
        None => Completion::Complete,
        Some(StopReason::Deadline) => Completion::DeadlineTruncated,
        Some(StopReason::Cancelled) => Completion::Cancelled,
    };
    // Whatever no worker reached before the stop is the fifth bucket,
    // tallied centrally: the per-worker counters only ever cover what
    // was actually visited, so the remainder of the candidate window
    // is exactly the unvisited tail. Zero on complete runs.
    let visited = evaluated as u128 + skipped as u128 + stats.bounded;
    debug_assert!(visited <= bound, "workers never visit past the window");
    stats.unvisited = bound - visited;
    stats.elapsed = started.elapsed();
    debug_assert!(
        stats.unvisited == 0 || !stats.completion.is_complete(),
        "a complete run leaves nothing unvisited"
    );
    debug_assert_eq!(
        evaluated as u128
            + skipped as u128
            + stats.bounded
            + stats.truncated_points
            + stats.unvisited,
        space,
        "every point lands in exactly one accounting bucket"
    );

    Ok(EngineRun {
        output,
        evaluated,
        skipped,
        space_size: space,
        truncated,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exhaustive_best, search_space, space_size};
    use lycos_ir::{Bsb, BsbId, BsbOrigin, Dfg, OpKind};
    use std::collections::BTreeSet;

    fn lib() -> HwLibrary {
        HwLibrary::standard()
    }

    fn app() -> BsbArray {
        let mk = |i: u32, kind: OpKind, n: usize, profile: u64| {
            let mut dfg = Dfg::new();
            for _ in 0..n {
                dfg.add_op(kind);
            }
            Bsb {
                id: BsbId(i),
                name: format!("b{i}"),
                dfg,
                reads: BTreeSet::new(),
                writes: BTreeSet::new(),
                profile,
                origin: BsbOrigin::Body,
            }
        };
        BsbArray::from_bsbs(
            "t",
            vec![
                mk(0, OpKind::Add, 3, 500),
                mk(1, OpKind::Mul, 2, 500),
                mk(2, OpKind::Add, 2, 90),
            ],
        )
    }

    fn restr(bsbs: &BsbArray, lib: &HwLibrary) -> Restrictions {
        Restrictions::from_asap(bsbs, lib).unwrap()
    }

    #[test]
    fn odometer_matches_sequential_enumeration() {
        let bsbs = app();
        let lib = lib();
        let dims = search_space(&restr(&bsbs, &lib));
        let space = space_size(&dims);
        // Walk by stepping from 0 and by direct decode; both must agree.
        let mut stepped = Odometer::at(&dims, &lib, 0);
        for index in 0..space {
            let decoded = Odometer::at(&dims, &lib, index);
            assert_eq!(decoded.counts, stepped.counts, "index {index}");
            assert_eq!(decoded.area, stepped.area, "index {index}");
            assert_eq!(
                decoded.rmap().area(&lib).gates(),
                decoded.area_gates(),
                "incremental area drifted at {index}"
            );
            if index + 1 < space {
                assert!(stepped.step());
            }
        }
        assert!(!stepped.step(), "space exhausted");
    }

    #[test]
    fn odometer_subtree_advance_matches_index_arithmetic() {
        let bsbs = app();
        let lib = lib();
        let dims = search_space(&restr(&bsbs, &lib));
        let space = space_size(&dims);
        // From every subtree root, advancing past the subtree lands on
        // the decode of `index + width`, with the right changed digit.
        for index in 0..space {
            let odo = Odometer::at(&dims, &lib, index);
            let z = odo.trailing_zeros();
            assert_eq!(odo.subtree_width(0), 1, "a leaf is its own subtree");
            for pos in 0..=z {
                let width = odo.subtree_width(pos);
                if index + width >= space {
                    continue;
                }
                let mut skipping = Odometer::at(&dims, &lib, index);
                let changed = skipping.advance(pos).expect("inside the space");
                let direct = Odometer::at(&dims, &lib, index + width);
                assert_eq!(skipping.counts, direct.counts, "index {index} pos {pos}");
                assert_eq!(skipping.area, direct.area, "index {index} pos {pos}");
                assert!(changed >= pos, "carry reaches at least the skipped digit");
            }
        }
    }

    #[test]
    fn sequential_memoised_and_parallel_agree() {
        let bsbs = app();
        let lib = lib();
        let restr = restr(&bsbs, &lib);
        let cfg = PaceConfig::standard();
        let area = Area::new(8_000);
        let seed = exhaustive_best(&bsbs, &lib, area, &restr, &cfg, None).unwrap();
        for threads in [1, 2, 3, 7] {
            for cache in [true, false] {
                for dp_threads in [1, 2] {
                    for steal in [true, false] {
                        let opts = SearchOptions {
                            threads,
                            limit: None,
                            cache,
                            dp_threads,
                            bound: false,
                            steal,
                            ..SearchOptions::default()
                        };
                        let got = search_best(&bsbs, &lib, area, &restr, &cfg, &opts).unwrap();
                        assert_eq!(
                            got, seed,
                            "threads={threads} cache={cache} dp_threads={dp_threads} steal={steal}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bounded_engine_is_field_exact_and_cheaper() {
        let bsbs = app();
        let lib = lib();
        let restr = restr(&bsbs, &lib);
        let cfg = PaceConfig::standard();
        for gates in [2_500u64, 8_000, 100_000] {
            let area = Area::new(gates);
            let seed = exhaustive_best(&bsbs, &lib, area, &restr, &cfg, None).unwrap();
            for threads in [1usize, 3] {
                for cache in [true, false] {
                    for bound_comm in [true, false] {
                        let got = search_best(
                            &bsbs,
                            &lib,
                            area,
                            &restr,
                            &cfg,
                            &SearchOptions {
                                threads,
                                cache,
                                bound: true,
                                bound_comm,
                                ..SearchOptions::default()
                            },
                        )
                        .unwrap();
                        // Field-exact winner: allocation, partition,
                        // the (time, area) pair — everything but the
                        // effort.
                        assert_eq!(got.best_allocation, seed.best_allocation, "area {gates}");
                        assert_eq!(got.best_partition, seed.best_partition, "area {gates}");
                        assert_eq!(got.space_size, seed.space_size);
                        assert_eq!(got.truncated, seed.truncated);
                        assert!(got.evaluated <= seed.evaluated, "bounding never adds work");
                        assert_eq!(got.points_accounted(), got.space_size, "area {gates}");
                    }
                }
            }
            // Sequentially the saving is deterministic; on this app the
            // bound genuinely bites.
            let seq = search_best(
                &bsbs,
                &lib,
                area,
                &restr,
                &cfg,
                &SearchOptions {
                    bound: true,
                    ..SearchOptions::sequential()
                },
            )
            .unwrap();
            assert!(seq.stats.bounded > 0, "area {gates}: nothing pruned");
        }
    }

    #[test]
    fn bounded_engine_respects_limits_field_exactly() {
        let bsbs = app();
        let lib = lib();
        let restr = restr(&bsbs, &lib);
        let cfg = PaceConfig::standard();
        let area = Area::new(2_500);
        for limit in [0usize, 1, 3, 10] {
            let seed = exhaustive_best(&bsbs, &lib, area, &restr, &cfg, Some(limit)).unwrap();
            let got = search_best(
                &bsbs,
                &lib,
                area,
                &restr,
                &cfg,
                &SearchOptions {
                    limit: Some(limit),
                    bound: true,
                    ..SearchOptions::sequential()
                },
            )
            .unwrap();
            assert_eq!(got.best_allocation, seed.best_allocation, "limit {limit}");
            assert_eq!(got.best_partition, seed.best_partition, "limit {limit}");
            assert_eq!(got.truncated, seed.truncated, "limit {limit}");
            assert_eq!(got.points_accounted(), got.space_size, "limit {limit}");
        }
    }

    #[test]
    fn incumbent_packing_orders_time_major_area_minor() {
        // Round trips.
        assert_eq!(unpack_incumbent(pack_incumbent(0, 0)), Some((0, 0)));
        assert_eq!(unpack_incumbent(pack_incumbent(7, 42)), Some((7, 42)));
        let edge = u64::from(u32::MAX) - 1;
        assert_eq!(
            unpack_incumbent(pack_incumbent(edge, edge)),
            Some((edge, edge))
        );
        // Time is the major key: one extra cycle outweighs any area.
        assert!(pack_incumbent(1, edge) < pack_incumbent(2, 0));
        // Area breaks ties, minor.
        assert!(pack_incumbent(5, 3) < pack_incumbent(5, 4));
        // u64::MAX edges: pairs that cannot pack become NO_INCUMBENT —
        // "no information", never a pruning licence.
        assert_eq!(pack_incumbent(u64::from(u32::MAX), 0), NO_INCUMBENT);
        assert_eq!(pack_incumbent(u64::MAX, 0), NO_INCUMBENT);
        assert_eq!(pack_incumbent(0, u64::MAX), NO_INCUMBENT);
        assert_eq!(pack_incumbent(u64::MAX, u64::MAX), NO_INCUMBENT);
        assert_eq!(unpack_incumbent(NO_INCUMBENT), None);
        // And every packable pair stays below the sentinel, so a real
        // incumbent always wins the fetch_min.
        assert!(pack_incumbent(edge, edge) < NO_INCUMBENT);
    }

    #[test]
    fn subtree_pruning_rules_respect_tie_breaks() {
        // Own incumbent: ties at equal area prune (a later equal point
        // never replaces an earlier one)…
        assert!(subtree_pruned(10, 5, Some((10, 5)), None));
        assert!(subtree_pruned(11, 9, Some((10, 5)), None));
        // …but an equal-time subtree that could undercut the area must
        // survive.
        assert!(!subtree_pruned(10, 4, Some((10, 5)), None));
        assert!(!subtree_pruned(9, 9, Some((10, 5)), None));
        // Shared incumbent: strictly worse prunes, an exact (time,
        // area) tie does NOT — the earliest such point must reach the
        // reduce.
        assert!(subtree_pruned(11, 9, None, Some((10, 5))));
        assert!(subtree_pruned(10, 6, None, Some((10, 5))));
        assert!(!subtree_pruned(10, 5, None, Some((10, 5))));
        assert!(!subtree_pruned(10, 4, None, Some((10, 5))));
        // No incumbents, no pruning.
        assert!(!subtree_pruned(u64::MAX / 4, u64::MAX / 4, None, None));
    }

    #[test]
    fn limits_truncate_identically() {
        let bsbs = app();
        let lib = lib();
        let restr = restr(&bsbs, &lib);
        let cfg = PaceConfig::standard();
        // A tight area forces skips, exercising the skip-aware bound.
        let area = Area::new(2_500);
        for limit in [0, 1, 3, 10, 10_000] {
            let seed = exhaustive_best(&bsbs, &lib, area, &restr, &cfg, Some(limit)).unwrap();
            for threads in [1, 4] {
                let opts = SearchOptions {
                    threads,
                    limit: Some(limit),
                    cache: true,
                    dp_threads: 1,
                    bound: false,
                    ..SearchOptions::default()
                };
                let got = search_best(&bsbs, &lib, area, &restr, &cfg, &opts).unwrap();
                assert_eq!(got, seed, "limit={limit} threads={threads}");
                assert_eq!(got.evaluated, seed.evaluated, "limit={limit}");
                assert_eq!(got.skipped, seed.skipped, "limit={limit}");
                assert_eq!(got.truncated, seed.truncated, "limit={limit}");
                assert_eq!(got.points_accounted(), got.space_size, "limit={limit}");
            }
        }
    }

    #[test]
    fn cache_hits_dominate_on_full_sweeps() {
        let bsbs = app();
        let lib = lib();
        let restr = restr(&bsbs, &lib);
        let cfg = PaceConfig::standard();
        let res = search_best(
            &bsbs,
            &lib,
            Area::new(100_000),
            &restr,
            &cfg,
            &SearchOptions::sequential(),
        )
        .unwrap();
        assert!(res.stats.cache_misses > 0);
        assert!(
            res.stats.hit_rate() > 0.5,
            "odometer locality should make most lookups hit (rate {})",
            res.stats.hit_rate()
        );
        assert!(res.stats.threads == 1);
        // Keys are allocated per insert only: probes answered from the
        // cache never clone the scratch key.
        assert_eq!(res.stats.key_allocs, res.stats.cache_misses);
        assert!(res.stats.key_allocs < res.stats.cache_hits + res.stats.cache_misses);
        // Incremental stepping: most block entries ride along clean.
        assert!(res.stats.clean_reuses > 0, "steps must reuse clean blocks");
        assert!(
            res.stats.dirty_ratio() < 1.0,
            "dirty ratio {} should reflect reuse",
            res.stats.dirty_ratio()
        );
        assert_eq!(
            res.stats.dirty_probes + res.stats.clean_reuses,
            (res.evaluated * bsbs.len()) as u64,
            "every evaluated candidate refreshes every block, one way or the other"
        );
    }

    #[test]
    fn step_into_matches_full_recompute() {
        // Walk a few odometer steps by hand: stepping with exactly the
        // changed kinds must equal a from-scratch refresh.
        let bsbs = app();
        let lib = lib();
        let cfg = PaceConfig::standard();
        let dims = search_space(&restr(&bsbs, &lib));
        let mut stepped_cache = MetricsCache::new(&bsbs, &lib, &cfg).unwrap();
        let mut fresh_cache = MetricsCache::disabled(&bsbs, &lib, &cfg).unwrap();
        let mut odo = Odometer::at(&dims, &lib, 0);
        let mut candidate = RMap::new();
        let mut stepped: Vec<BsbMetrics> = Vec::new();
        let mut fresh: Vec<BsbMetrics> = Vec::new();
        odo.write_rmap(&mut candidate);
        stepped_cache
            .metrics_into(&candidate, &mut stepped)
            .unwrap();
        while let Some(changed) = odo.advance(0) {
            odo.write_rmap(&mut candidate);
            let dirty: Vec<FuId> = (0..=changed).map(|p| odo.kind_at(p)).collect();
            stepped_cache
                .step_into(&candidate, &dirty, &mut stepped)
                .unwrap();
            fresh_cache.metrics_into(&candidate, &mut fresh).unwrap();
            assert_eq!(stepped, fresh, "at {:?}", odo.counts);
        }
        assert!(stepped_cache.clean_reuses() > 0, "reuse must have happened");
        assert!(stepped_cache.dirty_probes() > 0);
    }

    #[test]
    fn dirty_ratio_degenerate_cases() {
        let stats = SearchStats::default();
        assert_eq!(stats.dirty_ratio(), 1.0, "no refreshes: nothing reused");
        let stats = SearchStats {
            dirty_probes: 1,
            clean_reuses: 3,
            ..SearchStats::default()
        };
        assert_eq!(stats.dirty_ratio(), 0.25);
    }

    #[test]
    fn disabled_cache_never_allocates_keys() {
        let bsbs = app();
        let lib = lib();
        let restr = restr(&bsbs, &lib);
        let res = search_best(
            &bsbs,
            &lib,
            Area::new(100_000),
            &restr,
            &PaceConfig::standard(),
            &SearchOptions {
                cache: false,
                ..SearchOptions::sequential()
            },
        )
        .unwrap();
        assert_eq!(res.stats.cache_hits, 0);
        assert_eq!(res.stats.key_allocs, 0, "nothing inserted, nothing cloned");
    }

    #[test]
    fn empty_restrictions_search_is_all_software() {
        let bsbs = app();
        let lib = lib();
        for bound in [false, true] {
            let res = search_best(
                &bsbs,
                &lib,
                Area::new(10_000),
                &Restrictions::new(),
                &PaceConfig::standard(),
                &SearchOptions {
                    bound,
                    ..SearchOptions::default()
                },
            )
            .unwrap();
            assert!(res.best_allocation.is_empty());
            assert_eq!(res.space_size, 1);
            assert_eq!(res.evaluated, 1);
            assert_eq!(res.points_accounted(), 1);
        }
    }

    #[test]
    fn worker_split_covers_the_space_exactly() {
        for bound in [0u128, 1, 2, 5, 97, 1000] {
            for threads in [1usize, 2, 3, 8, 64] {
                let ranges = split_ranges(bound, threads);
                let total: u128 = ranges.iter().map(|r| r.end - r.start).sum();
                assert_eq!(total, bound, "bound={bound} threads={threads}");
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start, "contiguous");
                }
                assert!(ranges.iter().all(|r| !r.is_empty()));
            }
        }
    }

    #[test]
    fn worker_split_degenerate_corners() {
        // bound == 0: no ranges — nothing to sweep, nothing overlapping.
        assert!(split_ranges(0, 1).is_empty());
        assert!(split_ranges(0, 64).is_empty());
        // threads == 0 is treated as 1, not a division by zero.
        assert_eq!(split_ranges(10, 0), vec![0..10]);
        // More workers than points: one singleton range per point, in
        // order, never an empty or duplicated range.
        let ranges = split_ranges(3, 8);
        assert_eq!(ranges, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn worker_split_survives_u128_extremes() {
        // Near-max bounds must neither overflow `start + len` nor lose
        // or double-count points. (Summing lens stays in u128 because
        // it telescopes back to `bound`.)
        for bound in [u128::MAX, u128::MAX - 1, u128::MAX / 2 + 3] {
            for threads in [1usize, 2, 3, 7, 1024] {
                let ranges = split_ranges(bound, threads);
                assert_eq!(ranges.first().map(|r| r.start), Some(0));
                assert_eq!(ranges.last().map(|r| r.end), Some(bound));
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start, "contiguous, no overlap");
                }
                // Lengths differ by at most one across workers.
                let lens: Vec<u128> = ranges.iter().map(|r| r.end - r.start).collect();
                let min = lens.iter().min().unwrap();
                let max = lens.iter().max().unwrap();
                assert!(max - min <= 1, "bound={bound} threads={threads}");
            }
        }
    }

    #[test]
    fn weighted_split_balances_evaluable_points() {
        // Chunked histogram: all the work sits in the back half, so
        // the width split would starve the later workers. The weighted
        // split must put the boundary past the dead zone.
        let chunk = 10u128;
        let weights = [0u64, 0, 0, 0, 10, 10, 10, 10];
        let ranges = split_ranges_weighted(80, 2, &weights, chunk);
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0].end, ranges[1].start, "contiguous");
        assert_eq!(ranges.last().unwrap().end, 80, "covers the window");
        assert!(
            ranges[0].end >= 50,
            "first worker must absorb the dead prefix plus its share: {ranges:?}"
        );
        // Degenerate histograms fall back to the width split.
        assert_eq!(
            split_ranges_weighted(80, 2, &[], chunk),
            split_ranges(80, 2)
        );
        // A window far smaller than the chunk granularity (huge space,
        // tight limit) must not collapse the fan-out to one worker:
        // too few chunks per thread falls back to the width split.
        assert_eq!(
            split_ranges_weighted(2_000, 8, &[2_000], 1 << 60),
            split_ranges(2_000, 8)
        );
        assert_eq!(
            split_ranges_weighted(100, 8, &[60, 40], 50),
            split_ranges(100, 8)
        );
        assert_eq!(
            split_ranges_weighted(80, 2, &[0, 0], chunk),
            split_ranges(80, 2)
        );
        assert_eq!(
            split_ranges_weighted(80, 1, &weights, chunk),
            split_ranges(80, 1)
        );
        assert!(split_ranges_weighted(0, 4, &weights, chunk).is_empty());
    }

    #[test]
    fn weighted_split_always_partitions_the_window() {
        // Whatever the histogram, the split must stay a partition of
        // [0, bound) with at most `threads` non-empty ranges.
        let cases: &[(u128, usize, &[u64], u128)] = &[
            (100, 4, &[1, 1, 1, 1, 1, 1, 1, 1, 1, 1], 10),
            (95, 3, &[50, 0, 0, 0, 0, 0, 0, 0, 0, 1], 10),
            (7, 4, &[3, 9], 5),
            (1, 8, &[1], 1),
            (64, 64, &[1, 2, 3, 4, 5, 6, 7], 10),
        ];
        for &(bound, threads, weights, chunk) in cases {
            let ranges = split_ranges_weighted(bound, threads, weights, chunk);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= threads.max(1));
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, bound);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "contiguous");
            }
            assert!(ranges.iter().all(|r| !r.is_empty()));
        }
    }

    #[test]
    fn effective_threads_clamps_to_points_and_cap() {
        // Explicit requests clamp to the number of points…
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(1, 3), 1);
        // …a degenerate empty space still yields one worker…
        assert_eq!(effective_threads(4, 0), 1);
        assert_eq!(effective_threads(0, 0), 1);
        // …huge spaces cap at MAX_THREADS however much is requested…
        assert_eq!(effective_threads(1_000_000, u128::MAX), MAX_THREADS);
        // …and `0` resolves to the machine's parallelism, at least 1.
        let auto = effective_threads(0, u128::MAX);
        assert!((1..=MAX_THREADS).contains(&auto));
    }

    #[test]
    fn resolve_auto_engages_dp_threads_on_small_sweeps() {
        let defaults = SearchOptions::default();
        // Fewer candidates than cores: the sweep can only use 3 of 8
        // workers, so each gets the leftover cores for its DP rows.
        assert_eq!(defaults.resolve_with(3, 8), (3, 2));
        // A single candidate gets the whole machine inside the DP.
        assert_eq!(defaults.resolve_with(1, 8), (1, 8));
        // Enough candidates: the row split stays off.
        assert_eq!(defaults.resolve_with(1_000, 8), (8, 1));
        assert_eq!(defaults.resolve_with(8, 8), (8, 1));
        // A single-core machine never engages it.
        assert_eq!(defaults.resolve_with(3, 1), (1, 1));
        // Explicit dp_threads settings are honoured verbatim — even 0
        // (auto inside DpScratch) and even on small sweeps.
        let explicit = SearchOptions {
            dp_threads: 4,
            ..SearchOptions::default()
        };
        assert_eq!(explicit.resolve_with(2, 8), (2, 4));
        let zero = SearchOptions {
            dp_threads: 0,
            ..SearchOptions::default()
        };
        assert_eq!(zero.resolve_with(2, 8), (2, 0));
        // An explicit sweep-thread request leaves the auto shape: the
        // chosen configuration is honoured verbatim — sequential()
        // really is sequential, however small the sweep.
        let seq = SearchOptions {
            threads: 1,
            ..SearchOptions::default()
        };
        assert_eq!(seq.resolve_with(2, 8), (1, 1));
        assert_eq!(SearchOptions::sequential().resolve_with(2, 8), (1, 1));
        let four = SearchOptions {
            threads: 4,
            ..SearchOptions::default()
        };
        assert_eq!(four.resolve_with(2, 8), (2, 1));
    }

    #[test]
    fn truncation_bound_always_covers_the_all_sw_point() {
        let bsbs = app();
        let lib = lib();
        let dims = search_space(&restr(&bsbs, &lib));
        let space = space_size(&dims);
        // Even `limit = 0` keeps index 0 (the all-SW baseline) in
        // range; the bound is never 0.
        for limit in [Some(0), Some(1), Some(usize::MAX), None] {
            let (bound, _) = truncation_bound(&dims, &lib, 8_000, space, limit);
            assert!(bound >= 1, "limit={limit:?}");
            assert!(bound <= space, "limit={limit:?}");
        }
        // An empty dimension list spans exactly the all-SW point.
        let (bound, truncated) = truncation_bound(&[], &lib, 8_000, 1, Some(0));
        assert_eq!((bound, truncated), (1, false));
    }

    #[test]
    fn pre_walk_histogram_counts_exactly_the_window_evaluables() {
        let bsbs = app();
        let lib = lib();
        let dims = search_space(&restr(&bsbs, &lib));
        let space = space_size(&dims);
        let total_gates = 2_500u64;
        for limit in [Some(1), Some(3), Some(10), Some(usize::MAX)] {
            let pre = pre_walk(&dims, &lib, total_gates, space, limit, true);
            // Reference: count evaluable points inside [0, bound) by a
            // plain walk.
            let mut odo = Odometer::at(&dims, &lib, 0);
            let mut evaluable = 0u64;
            for index in 0..pre.bound {
                if index > 0 {
                    assert!(odo.step());
                }
                if odo.area_gates() <= total_gates {
                    evaluable += 1;
                }
            }
            let total: u64 = pre.evaluable.iter().sum();
            assert_eq!(total, evaluable, "limit={limit:?}");
            if pre.truncated {
                assert_eq!(u128::from(total), limit.unwrap().max(1) as u128);
            }
        }
    }

    #[test]
    fn limit_zero_and_huge_limits_search_like_the_seed() {
        let bsbs = app();
        let lib = lib();
        let restr = restr(&bsbs, &lib);
        let cfg = PaceConfig::standard();
        let area = Area::new(8_000);
        for limit in [Some(0), Some(usize::MAX)] {
            let seed = exhaustive_best(&bsbs, &lib, area, &restr, &cfg, limit).unwrap();
            let opts = SearchOptions {
                threads: 4,
                limit,
                cache: true,
                dp_threads: 1,
                bound: false,
                ..SearchOptions::default()
            };
            let got = search_best(&bsbs, &lib, area, &restr, &cfg, &opts).unwrap();
            assert_eq!(got, seed, "limit={limit:?}");
        }
    }

    #[test]
    fn steal_chunk_width_picks_the_largest_aligned_weight() {
        // Weights of a 4×4×4 space. Two workers want 16 chunks: width
        // 4 yields exactly 16 over a 64-point window, width 16 only 4.
        assert_eq!(steal_chunk_width(&[1, 4, 16, 64], 64, 2), 4);
        // One worker wants 8: width 4 still clears it (16 chunks),
        // width 16 would leave only 4.
        assert_eq!(steal_chunk_width(&[1, 4, 16, 64], 64, 1), 4);
        // A window smaller than the chunk target falls back to
        // single-point chunks rather than starving workers.
        assert_eq!(steal_chunk_width(&[1, 4, 16, 64], 5, 8), 1);
        // Degenerate spaces: one point, one chunk.
        assert_eq!(steal_chunk_width(&[1], 1, 4), 1);
        // A giant first radix: no coarser alignment meets the target,
        // so chunks stay single points.
        assert_eq!(steal_chunk_width(&[1, 1000], 1000, 4), 1);
        // Chunk starts are always subtree roots: whatever width is
        // chosen, it is one of the weights.
        let weights = [1u128, 3, 12, 60, 600];
        for bound in [1u128, 7, 59, 60, 599, 600] {
            for threads in [1usize, 2, 5, 8] {
                let w = steal_chunk_width(&weights, bound, threads);
                assert!(weights.contains(&w), "bound={bound} threads={threads}");
                // And the chunk count fits comfortably in the u64
                // cursor.
                assert!(bound.div_ceil(w) < u128::from(u64::MAX));
            }
        }
    }

    #[test]
    fn work_stealing_is_field_exact_for_any_worker_count() {
        let bsbs = app();
        let lib = lib();
        let restr = restr(&bsbs, &lib);
        let cfg = PaceConfig::standard();
        // A tight budget mixes evaluations with skips; the limit run
        // exercises truncation under the chunked scheduler too.
        for (gates, limit) in [(8_000u64, None), (2_500, None), (2_500, Some(5))] {
            let area = Area::new(gates);
            let seed = exhaustive_best(&bsbs, &lib, area, &restr, &cfg, limit).unwrap();
            for threads in 1..=8usize {
                for bound in [false, true] {
                    let got = search_best(
                        &bsbs,
                        &lib,
                        area,
                        &restr,
                        &cfg,
                        &SearchOptions {
                            threads,
                            limit,
                            bound,
                            steal: true,
                            ..SearchOptions::default()
                        },
                    )
                    .unwrap();
                    let tag =
                        format!("gates={gates} limit={limit:?} threads={threads} bound={bound}");
                    if bound {
                        // Bounding makes evaluated/skipped telemetry;
                        // the winner and the accounting identity stay
                        // exact.
                        assert_eq!(got.best_allocation, seed.best_allocation, "{tag}");
                        assert_eq!(got.best_partition, seed.best_partition, "{tag}");
                        assert_eq!(got.space_size, seed.space_size, "{tag}");
                        assert_eq!(got.truncated, seed.truncated, "{tag}");
                    } else {
                        // Without bounding every field is
                        // position-determined: full `SearchResult`
                        // equality at any worker count.
                        assert_eq!(got, seed, "{tag}");
                        assert_eq!(got.evaluated, seed.evaluated, "{tag}");
                        assert_eq!(got.skipped, seed.skipped, "{tag}");
                    }
                    assert_eq!(got.points_accounted(), got.space_size, "{tag}");
                }
            }
        }
    }

    #[test]
    fn steal_scheduler_reports_steals_and_static_does_not() {
        let bsbs = app();
        let lib = lib();
        let restr = restr(&bsbs, &lib);
        let cfg = PaceConfig::standard();
        let area = Area::new(100_000);
        let stolen = search_best(
            &bsbs,
            &lib,
            area,
            &restr,
            &cfg,
            &SearchOptions {
                threads: 4,
                steal: true,
                ..SearchOptions::default()
            },
        )
        .unwrap();
        // The window is far wider than the worker count, so the chunk
        // width collapses to fine alignment and at least one worker
        // must take several chunks (pigeonhole — even if one worker
        // drains the whole cursor).
        assert!(
            stolen.stats.steals > 0,
            "chunked scheduling must rebalance: {:?}",
            stolen.stats
        );
        assert_eq!(stolen.stats.threads, 4);
        let fixed = search_best(
            &bsbs,
            &lib,
            area,
            &restr,
            &cfg,
            &SearchOptions {
                threads: 4,
                steal: false,
                ..SearchOptions::default()
            },
        )
        .unwrap();
        assert_eq!(fixed.stats.steals, 0, "the static split never steals");
        assert_eq!(fixed, stolen, "scheduling policy never changes the result");
    }

    #[test]
    fn pre_walk_without_histogram_pins_the_same_truncation() {
        let bsbs = app();
        let lib = lib();
        let dims = search_space(&restr(&bsbs, &lib));
        let space = space_size(&dims);
        for limit in [Some(0), Some(3), Some(usize::MAX), None] {
            let with = pre_walk(&dims, &lib, 2_500, space, limit, true);
            let without = pre_walk(&dims, &lib, 2_500, space, limit, false);
            assert_eq!(with.bound, without.bound, "limit={limit:?}");
            assert_eq!(with.truncated, without.truncated, "limit={limit:?}");
            assert!(
                without.evaluable.is_empty(),
                "the histogram is dead weight under work-stealing"
            );
        }
    }

    #[test]
    fn stats_equality_is_ignored() {
        let a = SearchResult {
            best_allocation: RMap::new(),
            best_partition: crate::partition(
                &app(),
                &lib(),
                &RMap::new(),
                Area::new(1_000),
                &PaceConfig::standard(),
            )
            .unwrap(),
            best_gates: 0,
            best_index: 0,
            evaluated: 1,
            skipped: 0,
            space_size: 1,
            truncated: false,
            stats: SearchStats::default(),
        };
        let mut b = a.clone();
        b.stats.cache_hits = 99;
        b.stats.bounded = 7;
        b.stats.elapsed = Duration::from_secs(5);
        b.stats.artifact_hits = 3;
        b.stats.warm_reseeded = true;
        b.stats.blocks_reused = 4;
        b.stats.blocks_rederived = 1;
        b.stats.incremental_hits = 1;
        b.stats.completion = Completion::DeadlineTruncated;
        b.stats.unvisited = 11;
        assert_eq!(a, b, "telemetry must not break result identity");
    }

    #[test]
    fn builder_chain_mirrors_the_pub_fields() {
        let built = SearchOptions::new()
            .threads(4)
            .limit(Some(9))
            .cache(false)
            .dp_threads(2)
            .bound(true)
            .bound_comm(false)
            .simd(false)
            .steal(false)
            .store_cap(3)
            .warm(false)
            .incremental(false)
            .deadline_ms(Some(250));
        let literal = SearchOptions {
            threads: 4,
            limit: Some(9),
            cache: false,
            dp_threads: 2,
            bound: true,
            bound_comm: false,
            simd: false,
            steal: false,
            store_cap: 3,
            warm: false,
            incremental: false,
            deadline_ms: Some(250),
        };
        assert_eq!(built, literal);
        assert_eq!(SearchOptions::new(), SearchOptions::default());
    }

    #[test]
    fn staircase_pins_dominance_and_duplicate_areas() {
        let mut s: Vec<(u64, u64)> = Vec::new();
        staircase_insert(&mut s, 100, 50);
        staircase_insert(&mut s, 200, 40);
        staircase_insert(&mut s, 150, 45);
        assert_eq!(s, [(100, 50), (150, 45), (200, 40)]);
        // Dominated (more area, no less time): rejected.
        staircase_insert(&mut s, 160, 45);
        assert_eq!(s, [(100, 50), (150, 45), (200, 40)]);
        // Duplicate area, worse time: rejected; equal: keep-first.
        staircase_insert(&mut s, 150, 46);
        staircase_insert(&mut s, 150, 45);
        assert_eq!(s, [(100, 50), (150, 45), (200, 40)]);
        // Duplicate area, better time: replaces and sweeps dominated
        // successors away.
        staircase_insert(&mut s, 150, 39);
        assert_eq!(s, [(100, 50), (150, 39)]);
        // A new global best at less area clears everything behind it.
        staircase_insert(&mut s, 90, 30);
        assert_eq!(s, [(90, 30)]);
        // Floor queries: largest area ≤ the probe.
        staircase_insert(&mut s, 400, 20);
        assert_eq!(staircase_floor(&s, 89), None);
        assert_eq!(staircase_floor(&s, 90), Some((90, 30)));
        assert_eq!(staircase_floor(&s, 399), Some((90, 30)));
        assert_eq!(staircase_floor(&s, 400), Some((400, 20)));
    }

    #[test]
    fn frontier_insert_ties_keep_the_lexicographic_winner() {
        let part = crate::partition(
            &app(),
            &lib(),
            &RMap::new(),
            Area::new(1_000),
            &PaceConfig::standard(),
        )
        .unwrap();
        let mut points: Vec<ParetoEntry> = Vec::new();
        let insert = |points: &mut Vec<ParetoEntry>, time, area, gates, index| {
            frontier_insert(points, time, area, gates, index, || {
                (RMap::new(), part.clone())
            })
        };
        assert!(insert(&mut points, 50, 100, 80, 7));
        // Exact (time, area) tie, larger (gates, index): rejected.
        assert!(!insert(&mut points, 50, 100, 80, 9));
        assert!(!insert(&mut points, 50, 100, 90, 1));
        // Exact tie, smaller gates: replaces.
        assert!(insert(&mut points, 50, 100, 70, 9));
        assert_eq!(points.len(), 1);
        assert_eq!((points[0].gates, points[0].index), (70, 9));
        // Weak domination by the floor: rejected.
        assert!(!insert(&mut points, 50, 120, 0, 0));
        assert!(!insert(&mut points, 55, 100, 0, 0));
        // Strict improvements extend the staircase both ways.
        assert!(insert(&mut points, 40, 150, 60, 3));
        assert!(insert(&mut points, 60, 90, 10, 2));
        let shape: Vec<(u64, u64)> = points.iter().map(|e| (e.area, e.time)).collect();
        assert_eq!(shape, [(90, 60), (100, 50), (150, 40)]);
    }

    /// The tentpole acceptance on the in-crate fixture: the one-sweep
    /// frontier equals repeated single-budget exhaustive runs at each
    /// frontier area — partitions and allocations field-exact — and
    /// between frontier areas the exhaustive winner is the previous
    /// point (areas are minimal).
    #[test]
    fn pareto_frontier_matches_per_budget_exhaustive_runs() {
        let bsbs = app();
        let lib = lib();
        let restr = restr(&bsbs, &lib);
        let config = PaceConfig::standard();
        let total = Area::new(9_000);
        let front = search_pareto(
            &bsbs,
            &lib,
            total,
            &restr,
            &config,
            &SearchOptions::sequential(),
        )
        .unwrap();
        assert!(!front.points.is_empty());
        assert_eq!(front.points_accounted(), front.space_size);
        for pair in front.points.windows(2) {
            assert!(pair[0].area < pair[1].area, "areas strictly ascend");
            assert!(pair[0].time() > pair[1].time(), "times strictly descend");
        }
        for (i, point) in front.points.iter().enumerate() {
            let single = exhaustive_best(&bsbs, &lib, point.area, &restr, &config, None).unwrap();
            assert_eq!(single.best_partition, point.partition, "point {i}");
            assert_eq!(single.best_allocation, point.allocation, "point {i}");
            // Minimality: one gate less, and the previous point wins.
            if point.area.gates() > 0 {
                let below = Area::new(point.area.gates() - 1);
                let prev = exhaustive_best(&bsbs, &lib, below, &restr, &config, None).unwrap();
                if i == 0 {
                    assert!(
                        prev.best_partition.total_time > point.time(),
                        "first point's area is minimal"
                    );
                } else {
                    assert_eq!(
                        prev.best_partition.total_time,
                        front.points[i - 1].time(),
                        "between areas the previous frontier time rules"
                    );
                }
            }
        }
        // The fastest frontier point is the full-budget winner.
        let best = search_best(
            &bsbs,
            &lib,
            total,
            &restr,
            &config,
            &SearchOptions::sequential(),
        )
        .unwrap();
        let fastest = front.points.last().unwrap();
        assert_eq!(fastest.partition, best.best_partition);
        assert_eq!(fastest.allocation, best.best_allocation);
    }

    /// The frontier is identical across every engine shape: bounded or
    /// not, any thread count, either scheduler.
    #[test]
    fn pareto_frontier_is_engine_shape_invariant() {
        let bsbs = app();
        let lib = lib();
        let restr = restr(&bsbs, &lib);
        let config = PaceConfig::standard();
        let total = Area::new(9_000);
        let reference = search_pareto(
            &bsbs,
            &lib,
            total,
            &restr,
            &config,
            &SearchOptions::sequential(),
        )
        .unwrap();
        for threads in [1usize, 2, 5] {
            for bound in [false, true] {
                for steal in [false, true] {
                    let options = SearchOptions::new()
                        .threads(threads)
                        .bound(bound)
                        .steal(steal);
                    let run = search_pareto(&bsbs, &lib, total, &restr, &config, &options).unwrap();
                    assert_eq!(
                        run.points, reference.points,
                        "threads={threads} bound={bound} steal={steal}"
                    );
                    assert_eq!(run.points_accounted(), run.space_size);
                }
            }
        }
    }

    #[test]
    fn pareto_single_point_and_infeasible_frontiers() {
        let bsbs = app();
        let lib = lib();
        let config = PaceConfig::standard();
        // Zero area: only the all-software point fits, and the
        // frontier is exactly that single point at area 0.
        let restrictions = restr(&bsbs, &lib);
        let front = search_pareto(
            &bsbs,
            &lib,
            Area::new(0),
            &restrictions,
            &config,
            &SearchOptions::sequential(),
        )
        .unwrap();
        assert_eq!(front.points.len(), 1);
        let only = &front.points[0];
        assert_eq!(only.area, Area::new(0));
        assert!(only.allocation.is_empty());
        assert_eq!(only.time(), only.partition.all_sw_time);
        // No movable hardware at all (empty restrictions): every
        // budget collapses to the same all-software time, so the
        // frontier stays a single minimal-area point even with a huge
        // budget.
        let empty = Restrictions::new();
        let front = search_pareto(
            &bsbs,
            &lib,
            Area::new(50_000),
            &empty,
            &config,
            &SearchOptions::sequential(),
        )
        .unwrap();
        assert_eq!(front.points.len(), 1, "nothing trades area for time");
        assert!(front.points[0].allocation.is_empty());
    }

    /// Huge software times cannot pack into the shared incumbent word:
    /// the engine publishes "no information", counts the degradation,
    /// and the winner is still field-exact.
    #[test]
    fn unpackable_incumbents_are_counted_not_lied_about() {
        let mk = |i: u32, n: usize, profile: u64| {
            let mut dfg = Dfg::new();
            for _ in 0..n {
                dfg.add_op(OpKind::Mul);
            }
            Bsb {
                id: BsbId(i),
                name: format!("b{i}"),
                dfg,
                reads: BTreeSet::new(),
                writes: BTreeSet::new(),
                profile,
                origin: BsbOrigin::Body,
            }
        };
        // Profiles huge enough that every candidate's time tops 2³².
        let bsbs = BsbArray::from_bsbs(
            "huge",
            vec![mk(0, 3, 2_000_000_000), mk(1, 2, 2_000_000_000)],
        );
        let lib = lib();
        let restr = restr(&bsbs, &lib);
        let config = PaceConfig::standard();
        let area = Area::new(6_000);
        let bounded = search_best(
            &bsbs,
            &lib,
            area,
            &restr,
            &config,
            &SearchOptions::new().threads(1).bound(true),
        )
        .unwrap();
        assert!(
            bounded.stats.unpacked_incumbents > 0,
            "every improving candidate overflows the packed word"
        );
        let exhaustive = exhaustive_best(&bsbs, &lib, area, &restr, &config, None).unwrap();
        assert_eq!(bounded.best_partition, exhaustive.best_partition);
        assert_eq!(bounded.best_allocation, exhaustive.best_allocation);
        // Unbounded searches never publish, so the counter stays 0.
        let plain = search_best(
            &bsbs,
            &lib,
            area,
            &restr,
            &config,
            &SearchOptions::sequential(),
        )
        .unwrap();
        assert_eq!(plain.stats.unpacked_incumbents, 0);
    }
}
