//! Memoised, parallel allocation-space search.
//!
//! The paper's baseline partitions the application for *every*
//! allocation in the space (§5) — exactly the cost its §4.4 complexity
//! argument holds against the PACE allocator. [`search_best`] makes
//! that baseline usable on larger spaces with two observations:
//!
//! * **Memoisation** — a BSB's list schedule depends only on the unit
//!   counts of the kinds its operations use, so per-BSB metrics are
//!   cached under the allocation's projection onto that kind set
//!   ([`lycos_core::RMap::project`]). Adjacent odometer steps change
//!   one dimension, so most blocks hit the cache on most candidates.
//!   Run communication costs never depend on the allocation at all and
//!   are memoised across every candidate a worker evaluates
//!   ([`CommCosts`]), instead of being recomputed per partition call.
//! * **Allocation-free evaluation** — each worker owns a reusable
//!   [`DpScratch`], a metrics buffer and a candidate map; memo probes
//!   go through a scratch projection key. After warm-up, a candidate
//!   that does not improve on the incumbent allocates nothing on the
//!   heap; the full [`Partition`] is only materialised on improvement.
//! * **Parallelism** — the odometer sequence is split into contiguous
//!   index ranges fanned out over [`std::thread::scope`] workers, each
//!   with a private cache. Worker results are reduced deterministically
//!   in range order under the same strict `(time, area)` improvement
//!   rule the sequential walk uses, so the outcome is bit-identical to
//!   [`exhaustive_best`] — including `evaluated`, `skipped` and
//!   truncation behaviour, which are pinned ahead of the sweep by a
//!   cheap area-only pre-walk.

use crate::metrics::{bsb_statics, feasible_block_metrics, infeasible_block_metrics, BsbStatics};
use crate::{
    search_space, space_size, BsbMetrics, CommCosts, DpScratch, PaceConfig, PaceError, Partition,
    SearchResult,
};
use lycos_core::{RMap, Restrictions};
use lycos_hwlib::{Area, FuId, HwLibrary};
use lycos_ir::BsbArray;
use lycos_sched::FuCounts;
use std::collections::HashMap;
use std::ops::Range;
use std::time::{Duration, Instant};

/// Knobs of the allocation-search engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SearchOptions {
    /// Worker threads for the sweep. `0` = one per available core;
    /// `1` = sequential (still memoised when `cache` is on).
    pub threads: usize,
    /// Cap on the number of *evaluated* allocations, as in
    /// [`exhaustive_best`](crate::exhaustive_best); `None` exhausts
    /// the space.
    pub limit: Option<usize>,
    /// Whether to memoise per-BSB metrics across candidates. Disabling
    /// exists for benchmarking the cache itself; results are identical
    /// either way.
    pub cache: bool,
    /// Worker threads *inside* one PACE DP evaluation: each DP row's
    /// area axis is split across scoped workers while rows stay
    /// sequential ([`DpScratch::with_dp_threads`]). `1` (the default)
    /// = sequential; `0` = one per available core. Results are
    /// bit-identical at any setting. Opt-in: when `threads` already
    /// fans candidates out across cores, leave this at `1` — it pays
    /// off for large single-candidate evaluations (many controller
    /// levels), not for saturated sweeps.
    pub dp_threads: usize,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            threads: 0,
            limit: None,
            cache: true,
            dp_threads: 1,
        }
    }
}

impl SearchOptions {
    /// Sequential, memoised, unlimited — the reference configuration.
    pub fn sequential() -> Self {
        SearchOptions {
            threads: 1,
            ..SearchOptions::default()
        }
    }
}

/// Telemetry of one search run. Not part of a [`SearchResult`]'s
/// identity — two results are equal if they found the same answer over
/// the same space, however long it took.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Worker threads the sweep actually used.
    pub threads: usize,
    /// Per-BSB metric lookups answered from the memo cache.
    pub cache_hits: u64,
    /// Per-BSB metric lookups that had to list-schedule.
    pub cache_misses: u64,
    /// Memo keys actually allocated (one per cache insert). Every
    /// lookup used to allocate a key vector just to probe; probing now
    /// goes through a reused scratch buffer, so
    /// `cache_hits + cache_misses − key_allocs` probes cost no
    /// allocation at all.
    pub key_allocs: u64,
    /// Wall-clock time of the whole search.
    pub elapsed: Duration,
}

impl SearchStats {
    /// Fraction of metric lookups answered from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Memo cache of per-BSB metrics, keyed on the allocation's projection
/// onto each block's used unit kinds.
///
/// Guarantees that [`MetricsCache::metrics`] returns exactly what
/// [`crate::compute_metrics`] returns for the same allocation — the
/// cache is a pure evaluation-order optimisation (asserted by property
/// tests in the exploration crate).
///
/// # Examples
///
/// ```
/// use lycos_core::RMap;
/// use lycos_hwlib::HwLibrary;
/// use lycos_ir::{extract_bsbs, Cdfg, CdfgNode, DfgBuilder, OpKind, TripCount};
/// use lycos_pace::{compute_metrics, MetricsCache, PaceConfig};
///
/// let mut b = DfgBuilder::new();
/// let m = b.binary(OpKind::Mul, "a".into(), "b".into());
/// b.assign("x", m);
/// let cdfg = Cdfg::new("app", CdfgNode::block("b0", b.finish()));
/// let bsbs = extract_bsbs(&cdfg, None)?;
/// let lib = HwLibrary::standard();
/// let config = PaceConfig::standard();
/// let mult = lib.fu_for(OpKind::Mul).unwrap();
/// let alloc: RMap = [(mult, 1)].into_iter().collect();
///
/// let mut cache = MetricsCache::new(&bsbs, &lib, &config)?;
/// let cached = cache.metrics(&alloc)?;
/// assert_eq!(cached, compute_metrics(&bsbs, &lib, &alloc, &config)?);
/// let again = cache.metrics(&alloc)?;
/// assert_eq!(again, cached);
/// assert!(cache.hits() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct MetricsCache<'a> {
    bsbs: &'a BsbArray,
    lib: &'a HwLibrary,
    config: &'a PaceConfig,
    statics: Vec<BsbStatics>,
    entries: Vec<HashMap<Vec<u32>, BsbMetrics>>,
    enabled: bool,
    // Scratch projection key: probes go by slice; a key vector is
    // cloned out of here only when an entry is actually inserted.
    key_buf: Vec<u32>,
    hits: u64,
    misses: u64,
    key_allocs: u64,
}

impl<'a> MetricsCache<'a> {
    /// A cache over `bsbs`, precomputing the allocation-independent
    /// per-block facts (software times, required resources, kind sets).
    ///
    /// # Errors
    ///
    /// [`PaceError::Hw`] if an operation kind has no default unit.
    pub fn new(
        bsbs: &'a BsbArray,
        lib: &'a HwLibrary,
        config: &'a PaceConfig,
    ) -> Result<Self, PaceError> {
        Self::build(bsbs, lib, config, true)
    }

    /// A pass-through variant that recomputes every lookup — used to
    /// benchmark the cache against itself.
    ///
    /// # Errors
    ///
    /// [`PaceError::Hw`] if an operation kind has no default unit.
    pub fn disabled(
        bsbs: &'a BsbArray,
        lib: &'a HwLibrary,
        config: &'a PaceConfig,
    ) -> Result<Self, PaceError> {
        Self::build(bsbs, lib, config, false)
    }

    fn build(
        bsbs: &'a BsbArray,
        lib: &'a HwLibrary,
        config: &'a PaceConfig,
        enabled: bool,
    ) -> Result<Self, PaceError> {
        let statics = bsb_statics(bsbs, lib, config)?;
        Ok(Self::from_statics(bsbs, lib, config, statics, enabled))
    }

    /// A cache over statics already computed elsewhere — the search
    /// engine precomputes them once and hands each worker a clone
    /// instead of re-deriving them per thread.
    pub(crate) fn from_statics(
        bsbs: &'a BsbArray,
        lib: &'a HwLibrary,
        config: &'a PaceConfig,
        statics: Vec<BsbStatics>,
        enabled: bool,
    ) -> Self {
        let entries = vec![HashMap::new(); bsbs.len()];
        MetricsCache {
            bsbs,
            lib,
            config,
            statics,
            entries,
            enabled,
            key_buf: Vec::new(),
            hits: 0,
            misses: 0,
            key_allocs: 0,
        }
    }

    /// Metrics for every block under `allocation`, served from the
    /// cache where the projection matches an earlier candidate.
    ///
    /// # Errors
    ///
    /// [`PaceError::Sched`] if a block's DFG cannot be scheduled at all.
    pub fn metrics(&mut self, allocation: &RMap) -> Result<Vec<BsbMetrics>, PaceError> {
        let mut out = Vec::with_capacity(self.bsbs.len());
        self.metrics_into(allocation, &mut out)?;
        Ok(out)
    }

    /// [`MetricsCache::metrics`] into a caller-owned buffer (cleared
    /// first) — the sweep's steady-state path, which reuses one buffer
    /// across every candidate a worker evaluates. Projection keys are
    /// built in a scratch buffer and probed by slice; a key is only
    /// allocated when an entry is inserted (counted by
    /// [`MetricsCache::key_allocs`]).
    ///
    /// # Errors
    ///
    /// [`PaceError::Sched`] if a block's DFG cannot be scheduled at all.
    pub fn metrics_into(
        &mut self,
        allocation: &RMap,
        out: &mut Vec<BsbMetrics>,
    ) -> Result<(), PaceError> {
        out.clear();
        for (i, (bsb, stat)) in self.bsbs.iter().zip(&self.statics).enumerate() {
            let feasible = stat.movable && allocation.covers(&stat.needed);
            if !feasible {
                out.push(infeasible_block_metrics(stat.sw_time));
                continue;
            }
            allocation.project_into(&stat.kinds, &mut self.key_buf);
            if self.enabled {
                if let Some(&hit) = self.entries[i].get(self.key_buf.as_slice()) {
                    self.hits += 1;
                    out.push(hit);
                    continue;
                }
            }
            self.misses += 1;
            // Counts restricted to the block's own kinds: the list
            // scheduler only ever looks those up, so the schedule is
            // identical to one under the full allocation.
            let counts: FuCounts = stat
                .kinds
                .iter()
                .zip(&self.key_buf)
                .map(|(&fu, &c)| (fu, c))
                .collect();
            let m = feasible_block_metrics(bsb, self.lib, &counts, stat.sw_time, self.config)?;
            if self.enabled {
                self.key_allocs += 1;
                self.entries[i].insert(self.key_buf.clone(), m);
            }
            out.push(m);
        }
        Ok(())
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to run the list scheduler.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Projection keys allocated so far — one per insert, never per
    /// probe.
    pub fn key_allocs(&self) -> u64 {
        self.key_allocs
    }
}

/// Mixed-radix odometer over the allocation space, with incremental
/// data-path area tracking. Dimension 0 is the least-significant digit,
/// matching the sequential walk of [`exhaustive_best`]: the point at
/// index `i` is the `i`-th allocation that walk visits.
struct Odometer {
    caps: Vec<u32>,
    fus: Vec<FuId>,
    unit_area: Vec<u64>,
    counts: Vec<u32>,
    area: u64,
}

impl Odometer {
    /// The odometer positioned at `index` (`0 ≤ index < space size`).
    fn at(dims: &[(FuId, u32)], lib: &HwLibrary, index: u128) -> Odometer {
        let caps: Vec<u32> = dims.iter().map(|&(_, cap)| cap).collect();
        let fus: Vec<FuId> = dims.iter().map(|&(fu, _)| fu).collect();
        let unit_area: Vec<u64> = fus.iter().map(|&fu| lib.area_of(fu).gates()).collect();
        let mut rest = index;
        let mut counts = vec![0u32; dims.len()];
        for (c, &cap) in counts.iter_mut().zip(&caps) {
            let base = cap as u128 + 1;
            *c = (rest % base) as u32;
            rest /= base;
        }
        debug_assert_eq!(rest, 0, "index outside the space");
        let area = counts
            .iter()
            .zip(&unit_area)
            .map(|(&c, &a)| c as u64 * a)
            .sum();
        Odometer {
            caps,
            fus,
            unit_area,
            counts,
            area,
        }
    }

    /// Advances to the next point; `false` once the space is exhausted.
    fn step(&mut self) -> bool {
        for pos in 0..self.counts.len() {
            self.counts[pos] += 1;
            self.area += self.unit_area[pos];
            if self.counts[pos] <= self.caps[pos] {
                return true;
            }
            self.area -= self.unit_area[pos] * (self.caps[pos] as u64 + 1);
            self.counts[pos] = 0;
        }
        false
    }

    /// The current point as a resource map (test-only: the sweep
    /// itself reuses one map via [`Odometer::write_rmap`]).
    #[cfg(test)]
    fn rmap(&self) -> RMap {
        let mut out = RMap::new();
        self.write_rmap(&mut out);
        out
    }

    /// Writes the current point into a reused resource map — the
    /// sweep's steady-state path, which updates one map in place
    /// instead of rebuilding a fresh `RMap` per candidate.
    fn write_rmap(&self, into: &mut RMap) {
        for (&fu, &c) in self.fus.iter().zip(&self.counts) {
            into.set(fu, c);
        }
    }

    /// Data-path area of the current point, in gate equivalents.
    fn area_gates(&self) -> u64 {
        self.area
    }
}

/// Pins where a limited search stops, before any partitioning runs.
///
/// The sequential walk evaluates the all-software point, then skips
/// area-infeasible candidates freely and truncates at the first
/// evaluable candidate past the limit. Walking the odometer with area
/// tracking alone (no scheduling) finds that exact index, so parallel
/// workers can cover `[0, bound)` and reproduce `evaluated`, `skipped`
/// and `truncated` bit-for-bit.
fn truncation_bound(
    dims: &[(FuId, u32)],
    lib: &HwLibrary,
    total_gates: u64,
    space: u128,
    limit: Option<usize>,
) -> (u128, bool) {
    let Some(limit) = limit else {
        return (space, false);
    };
    // The all-software point (index 0) is always evaluated, even under
    // `limit = 0`; truncation strikes the (limit+1)-th evaluable point.
    let target = limit.max(1) as u128 + 1;
    let mut odo = Odometer::at(dims, lib, 0);
    let mut evaluable = 1u128;
    let mut index = 0u128;
    loop {
        if !odo.step() {
            return (space, false);
        }
        index += 1;
        if odo.area_gates() <= total_gates {
            evaluable += 1;
            if evaluable == target {
                return (index, true);
            }
        }
    }
}

/// What one worker brings back from its odometer range.
#[derive(Default)]
struct WorkerOut {
    /// Best candidate of the range: allocation, partition, data-path
    /// gates (the earliest point achieving the range's minimal
    /// `(time, area)`).
    best: Option<(RMap, Partition, u64)>,
    evaluated: usize,
    skipped: usize,
    hits: u64,
    misses: u64,
    key_allocs: u64,
}

/// Evaluates every point of `range`, memoised, single-threaded (plus
/// the opt-in intra-candidate row split when `options.dp_threads` asks
/// for one). `statics` is a clone of the engine's one-time precompute;
/// the run-traffic memo, the DP scratch, the metrics buffer and the
/// candidate map are private to the worker and reused across every
/// point — after warm-up a non-improving evaluation performs no heap
/// allocation at all (the winning [`Partition`] is only materialised
/// when a candidate actually improves on the range's best).
#[allow(clippy::too_many_arguments)] // internal seam of search_best
fn sweep_range(
    bsbs: &BsbArray,
    lib: &HwLibrary,
    config: &PaceConfig,
    total_gates: u64,
    dims: &[(FuId, u32)],
    range: Range<u128>,
    statics: Vec<BsbStatics>,
    options: &SearchOptions,
) -> Result<WorkerOut, PaceError> {
    let mut cache = MetricsCache::from_statics(bsbs, lib, config, statics, options.cache);
    let mut comm = CommCosts::new(bsbs.len());
    let mut scratch = DpScratch::with_dp_threads(options.dp_threads);
    let mut metrics: Vec<BsbMetrics> = Vec::with_capacity(bsbs.len());
    let mut candidate = RMap::new();
    let mut out = WorkerOut::default();
    if range.is_empty() {
        return Ok(out);
    }
    let mut odo = Odometer::at(dims, lib, range.start);
    let mut index = range.start;
    loop {
        let gates = odo.area_gates();
        if gates > total_gates {
            out.skipped += 1;
        } else {
            odo.write_rmap(&mut candidate);
            cache.metrics_into(&candidate, &mut metrics)?;
            let time = scratch.evaluate(
                bsbs,
                &metrics,
                &mut comm,
                Area::new(total_gates - gates),
                config,
            );
            out.evaluated += 1;
            let better = match &out.best {
                None => true,
                Some((_, bp, barea)) => {
                    time < bp.total_time.count()
                        || (time == bp.total_time.count() && gates < *barea)
                }
            };
            if better {
                let p = scratch.backtrack(&metrics, Area::new(gates));
                out.best = Some((candidate.clone(), p, gates));
            }
        }
        index += 1;
        if index >= range.end {
            break;
        }
        let advanced = odo.step();
        debug_assert!(advanced, "range ends within the space");
    }
    out.hits = cache.hits();
    out.misses = cache.misses();
    out.key_allocs = cache.key_allocs();
    Ok(out)
}

/// `bound` points split into at most `threads` contiguous ranges of
/// near-equal size, in odometer order.
///
/// Invariants (pinned by unit tests across the degenerate corners —
/// `bound == 0`, `threads > bound`, `bound` at the `u128` limit):
/// the ranges are non-empty, non-overlapping, contiguous from `0`,
/// and their lengths sum to exactly `bound`; `bound == 0` yields no
/// ranges at all. `start + len` never overflows because every prefix
/// sum of lengths is bounded by `bound` itself.
fn split_ranges(bound: u128, threads: usize) -> Vec<Range<u128>> {
    let threads = threads.max(1) as u128;
    let base = bound / threads;
    let extra = bound % threads;
    let mut ranges = Vec::new();
    let mut start = 0u128;
    for w in 0..threads {
        let len = base + u128::from(w < extra);
        if len == 0 {
            break;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Hard cap on sweep workers: beyond this, thread spawn/join overhead
/// dwarfs any split benefit on every machine this could run on.
const MAX_THREADS: usize = 1024;

/// Resolves the worker count: `0` = available parallelism, never more
/// workers than points, and never more than [`MAX_THREADS`]. A
/// degenerate `bound == 0` still resolves to one worker, so the caller
/// always gets a well-formed (possibly empty) range split.
fn effective_threads(requested: usize, bound: u128) -> usize {
    let hw = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    let t = if requested == 0 { hw() } else { requested };
    t.clamp(1, bound.clamp(1, MAX_THREADS as u128) as usize)
}

/// Memoised, optionally parallel exhaustive search — result-identical
/// to [`exhaustive_best`](crate::exhaustive_best) (same best
/// allocation and partition, same
/// `evaluated`/`skipped`/`truncated` accounting), but with per-BSB
/// schedules cached across candidates and the odometer range fanned
/// out over scoped worker threads.
///
/// # Errors
///
/// Propagates [`PaceError`] from partition evaluation, as the
/// sequential walk does.
///
/// # Examples
///
/// ```
/// use lycos_core::Restrictions;
/// use lycos_hwlib::{Area, HwLibrary};
/// use lycos_ir::{extract_bsbs, Cdfg, CdfgNode, DfgBuilder, OpKind, TripCount};
/// use lycos_pace::{exhaustive_best, search_best, PaceConfig, SearchOptions};
///
/// let mut b = DfgBuilder::new();
/// let m = b.binary(OpKind::Mul, "a".into(), "b".into());
/// b.assign("x", m);
/// let m2 = b.binary(OpKind::Mul, "c".into(), "d".into());
/// b.assign("y", m2);
/// let cdfg = Cdfg::new(
///     "hot",
///     CdfgNode::Loop {
///         label: "l".into(),
///         test: None,
///         body: Box::new(CdfgNode::block("body", b.finish())),
///         trip: TripCount::Fixed(400),
///     },
/// );
/// let bsbs = extract_bsbs(&cdfg, None)?;
/// let lib = HwLibrary::standard();
/// let restr = Restrictions::from_asap(&bsbs, &lib)?;
/// let config = PaceConfig::standard();
/// let area = Area::new(6000);
///
/// let fast = search_best(&bsbs, &lib, area, &restr, &config,
///                        &SearchOptions { threads: 2, ..Default::default() })?;
/// let slow = exhaustive_best(&bsbs, &lib, area, &restr, &config, None)?;
/// assert_eq!(fast, slow, "telemetry aside, the results are identical");
/// assert!(fast.stats.cache_misses > 0);
/// // Never flakes: with at least one evaluation the rate is +∞ when
/// // the wall clock reads zero (see `SearchResult::eval_rate`).
/// assert!(fast.eval_rate() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn search_best(
    bsbs: &BsbArray,
    lib: &HwLibrary,
    total_area: Area,
    restrictions: &Restrictions,
    config: &PaceConfig,
    options: &SearchOptions,
) -> Result<SearchResult, PaceError> {
    let started = Instant::now();
    let dims = search_space(restrictions);
    let space = space_size(&dims);
    let total_gates = total_area.gates();
    let (bound, truncated) = truncation_bound(&dims, lib, total_gates, space, options.limit);
    // The all-software point (index 0) is always inside the bound —
    // `truncation_bound` returns ≥ 1 even under `limit = 0`, and an
    // empty dimension list still spans one point — so the reduce below
    // always sees at least one evaluated candidate.
    debug_assert!(bound >= 1, "search bound excludes the all-SW point");
    let threads = effective_threads(options.threads, bound);
    let ranges = split_ranges(bound, threads);

    // One-time precompute shared across the sweep: the per-block
    // statics (software times, required resources, kind sets). Workers
    // get clones — small, flat vectors — instead of re-deriving them.
    // The run-traffic memo stays lazy *per worker* on purpose: eagerly
    // filling the full O(L²) table costs more than a short or heavily
    // limited sweep ever spends on traffic, and a worker only pays for
    // the runs its own candidates make feasible.
    let statics = bsb_statics(bsbs, lib, config)?;

    let outs: Vec<Result<WorkerOut, PaceError>> = if ranges.len() <= 1 {
        vec![sweep_range(
            bsbs,
            lib,
            config,
            total_gates,
            &dims,
            0..bound,
            statics,
            options,
        )]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|range| {
                    let range = range.clone();
                    let dims = &dims;
                    let statics = statics.clone();
                    scope.spawn(move || {
                        sweep_range(
                            bsbs,
                            lib,
                            config,
                            total_gates,
                            dims,
                            range,
                            statics,
                            options,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("search worker panicked"))
                .collect()
        })
    };

    let mut best: Option<(RMap, Partition, u64)> = None;
    let mut evaluated = 0usize;
    let mut skipped = 0usize;
    let mut stats = SearchStats {
        threads: ranges.len().max(1),
        ..SearchStats::default()
    };
    // Merge in range order under the strict (time, area) improvement
    // rule: ties keep the earlier range, exactly as the sequential
    // walk keeps the earlier point.
    for out in outs {
        let out = out?;
        evaluated += out.evaluated;
        skipped += out.skipped;
        stats.cache_hits += out.hits;
        stats.cache_misses += out.misses;
        stats.key_allocs += out.key_allocs;
        if let Some((alloc, part, gates)) = out.best {
            let better = match &best {
                None => true,
                Some((_, bp, bgates)) => {
                    part.total_time < bp.total_time
                        || (part.total_time == bp.total_time && gates < *bgates)
                }
            };
            if better {
                best = Some((alloc, part, gates));
            }
        }
    }
    let (best_allocation, best_partition, _) =
        best.expect("the all-software point is always evaluated");
    stats.elapsed = started.elapsed();

    Ok(SearchResult {
        best_allocation,
        best_partition,
        evaluated,
        skipped,
        space_size: space,
        truncated,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive_best;
    use lycos_ir::{Bsb, BsbId, BsbOrigin, Dfg, OpKind};
    use std::collections::BTreeSet;

    fn lib() -> HwLibrary {
        HwLibrary::standard()
    }

    fn app() -> BsbArray {
        let mk = |i: u32, kind: OpKind, n: usize, profile: u64| {
            let mut dfg = Dfg::new();
            for _ in 0..n {
                dfg.add_op(kind);
            }
            Bsb {
                id: BsbId(i),
                name: format!("b{i}"),
                dfg,
                reads: BTreeSet::new(),
                writes: BTreeSet::new(),
                profile,
                origin: BsbOrigin::Body,
            }
        };
        BsbArray::from_bsbs(
            "t",
            vec![
                mk(0, OpKind::Add, 3, 500),
                mk(1, OpKind::Mul, 2, 500),
                mk(2, OpKind::Add, 2, 90),
            ],
        )
    }

    fn restr(bsbs: &BsbArray, lib: &HwLibrary) -> Restrictions {
        Restrictions::from_asap(bsbs, lib).unwrap()
    }

    #[test]
    fn odometer_matches_sequential_enumeration() {
        let bsbs = app();
        let lib = lib();
        let dims = search_space(&restr(&bsbs, &lib));
        let space = space_size(&dims);
        // Walk by stepping from 0 and by direct decode; both must agree.
        let mut stepped = Odometer::at(&dims, &lib, 0);
        for index in 0..space {
            let decoded = Odometer::at(&dims, &lib, index);
            assert_eq!(decoded.counts, stepped.counts, "index {index}");
            assert_eq!(decoded.area, stepped.area, "index {index}");
            assert_eq!(
                decoded.rmap().area(&lib).gates(),
                decoded.area_gates(),
                "incremental area drifted at {index}"
            );
            if index + 1 < space {
                assert!(stepped.step());
            }
        }
        assert!(!stepped.step(), "space exhausted");
    }

    #[test]
    fn sequential_memoised_and_parallel_agree() {
        let bsbs = app();
        let lib = lib();
        let restr = restr(&bsbs, &lib);
        let cfg = PaceConfig::standard();
        let area = Area::new(8_000);
        let seed = exhaustive_best(&bsbs, &lib, area, &restr, &cfg, None).unwrap();
        for threads in [1, 2, 3, 7] {
            for cache in [true, false] {
                for dp_threads in [1, 2] {
                    let opts = SearchOptions {
                        threads,
                        limit: None,
                        cache,
                        dp_threads,
                    };
                    let got = search_best(&bsbs, &lib, area, &restr, &cfg, &opts).unwrap();
                    assert_eq!(
                        got, seed,
                        "threads={threads} cache={cache} dp_threads={dp_threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn limits_truncate_identically() {
        let bsbs = app();
        let lib = lib();
        let restr = restr(&bsbs, &lib);
        let cfg = PaceConfig::standard();
        // A tight area forces skips, exercising the skip-aware bound.
        let area = Area::new(2_500);
        for limit in [0, 1, 3, 10, 10_000] {
            let seed = exhaustive_best(&bsbs, &lib, area, &restr, &cfg, Some(limit)).unwrap();
            for threads in [1, 4] {
                let opts = SearchOptions {
                    threads,
                    limit: Some(limit),
                    cache: true,
                    dp_threads: 1,
                };
                let got = search_best(&bsbs, &lib, area, &restr, &cfg, &opts).unwrap();
                assert_eq!(got, seed, "limit={limit} threads={threads}");
                assert_eq!(got.evaluated, seed.evaluated, "limit={limit}");
                assert_eq!(got.skipped, seed.skipped, "limit={limit}");
                assert_eq!(got.truncated, seed.truncated, "limit={limit}");
            }
        }
    }

    #[test]
    fn cache_hits_dominate_on_full_sweeps() {
        let bsbs = app();
        let lib = lib();
        let restr = restr(&bsbs, &lib);
        let cfg = PaceConfig::standard();
        let res = search_best(
            &bsbs,
            &lib,
            Area::new(100_000),
            &restr,
            &cfg,
            &SearchOptions::sequential(),
        )
        .unwrap();
        assert!(res.stats.cache_misses > 0);
        assert!(
            res.stats.hit_rate() > 0.5,
            "odometer locality should make most lookups hit (rate {})",
            res.stats.hit_rate()
        );
        assert!(res.stats.threads == 1);
        // Keys are allocated per insert only: probes answered from the
        // cache never clone the scratch key.
        assert_eq!(res.stats.key_allocs, res.stats.cache_misses);
        assert!(res.stats.key_allocs < res.stats.cache_hits + res.stats.cache_misses);
    }

    #[test]
    fn disabled_cache_never_allocates_keys() {
        let bsbs = app();
        let lib = lib();
        let restr = restr(&bsbs, &lib);
        let res = search_best(
            &bsbs,
            &lib,
            Area::new(100_000),
            &restr,
            &PaceConfig::standard(),
            &SearchOptions {
                cache: false,
                ..SearchOptions::sequential()
            },
        )
        .unwrap();
        assert_eq!(res.stats.cache_hits, 0);
        assert_eq!(res.stats.key_allocs, 0, "nothing inserted, nothing cloned");
    }

    #[test]
    fn empty_restrictions_search_is_all_software() {
        let bsbs = app();
        let lib = lib();
        let res = search_best(
            &bsbs,
            &lib,
            Area::new(10_000),
            &Restrictions::new(),
            &PaceConfig::standard(),
            &SearchOptions::default(),
        )
        .unwrap();
        assert!(res.best_allocation.is_empty());
        assert_eq!(res.space_size, 1);
        assert_eq!(res.evaluated, 1);
    }

    #[test]
    fn worker_split_covers_the_space_exactly() {
        for bound in [0u128, 1, 2, 5, 97, 1000] {
            for threads in [1usize, 2, 3, 8, 64] {
                let ranges = split_ranges(bound, threads);
                let total: u128 = ranges.iter().map(|r| r.end - r.start).sum();
                assert_eq!(total, bound, "bound={bound} threads={threads}");
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start, "contiguous");
                }
                assert!(ranges.iter().all(|r| !r.is_empty()));
            }
        }
    }

    #[test]
    fn worker_split_degenerate_corners() {
        // bound == 0: no ranges — nothing to sweep, nothing overlapping.
        assert!(split_ranges(0, 1).is_empty());
        assert!(split_ranges(0, 64).is_empty());
        // threads == 0 is treated as 1, not a division by zero.
        assert_eq!(split_ranges(10, 0), vec![0..10]);
        // More workers than points: one singleton range per point, in
        // order, never an empty or duplicated range.
        let ranges = split_ranges(3, 8);
        assert_eq!(ranges, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn worker_split_survives_u128_extremes() {
        // Near-max bounds must neither overflow `start + len` nor lose
        // or double-count points. (Summing lens stays in u128 because
        // it telescopes back to `bound`.)
        for bound in [u128::MAX, u128::MAX - 1, u128::MAX / 2 + 3] {
            for threads in [1usize, 2, 3, 7, 1024] {
                let ranges = split_ranges(bound, threads);
                assert_eq!(ranges.first().map(|r| r.start), Some(0));
                assert_eq!(ranges.last().map(|r| r.end), Some(bound));
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start, "contiguous, no overlap");
                }
                // Lengths differ by at most one across workers.
                let lens: Vec<u128> = ranges.iter().map(|r| r.end - r.start).collect();
                let min = lens.iter().min().unwrap();
                let max = lens.iter().max().unwrap();
                assert!(max - min <= 1, "bound={bound} threads={threads}");
            }
        }
    }

    #[test]
    fn effective_threads_clamps_to_points_and_cap() {
        // Explicit requests clamp to the number of points…
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(1, 3), 1);
        // …a degenerate empty space still yields one worker…
        assert_eq!(effective_threads(4, 0), 1);
        assert_eq!(effective_threads(0, 0), 1);
        // …huge spaces cap at MAX_THREADS however much is requested…
        assert_eq!(effective_threads(1_000_000, u128::MAX), MAX_THREADS);
        // …and `0` resolves to the machine's parallelism, at least 1.
        let auto = effective_threads(0, u128::MAX);
        assert!((1..=MAX_THREADS).contains(&auto));
    }

    #[test]
    fn truncation_bound_always_covers_the_all_sw_point() {
        let bsbs = app();
        let lib = lib();
        let dims = search_space(&restr(&bsbs, &lib));
        let space = space_size(&dims);
        // Even `limit = 0` keeps index 0 (the all-SW baseline) in
        // range; the bound is never 0.
        for limit in [Some(0), Some(1), Some(usize::MAX), None] {
            let (bound, _) = truncation_bound(&dims, &lib, 8_000, space, limit);
            assert!(bound >= 1, "limit={limit:?}");
            assert!(bound <= space, "limit={limit:?}");
        }
        // An empty dimension list spans exactly the all-SW point.
        let (bound, truncated) = truncation_bound(&[], &lib, 8_000, 1, Some(0));
        assert_eq!((bound, truncated), (1, false));
    }

    #[test]
    fn limit_zero_and_huge_limits_search_like_the_seed() {
        let bsbs = app();
        let lib = lib();
        let restr = restr(&bsbs, &lib);
        let cfg = PaceConfig::standard();
        let area = Area::new(8_000);
        for limit in [Some(0), Some(usize::MAX)] {
            let seed = exhaustive_best(&bsbs, &lib, area, &restr, &cfg, limit).unwrap();
            let opts = SearchOptions {
                threads: 4,
                limit,
                cache: true,
                dp_threads: 1,
            };
            let got = search_best(&bsbs, &lib, area, &restr, &cfg, &opts).unwrap();
            assert_eq!(got, seed, "limit={limit:?}");
        }
    }

    #[test]
    fn stats_equality_is_ignored() {
        let a = SearchResult {
            best_allocation: RMap::new(),
            best_partition: crate::partition(
                &app(),
                &lib(),
                &RMap::new(),
                Area::new(1_000),
                &PaceConfig::standard(),
            )
            .unwrap(),
            evaluated: 1,
            skipped: 0,
            space_size: 1,
            truncated: false,
            stats: SearchStats::default(),
        };
        let mut b = a.clone();
        b.stats.cache_hits = 99;
        b.stats.elapsed = Duration::from_secs(5);
        assert_eq!(a, b, "telemetry must not break result identity");
    }
}
