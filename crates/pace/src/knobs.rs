//! The single source of truth for the search-engine knob surface.
//!
//! [`SearchOptions`] knobs used to be re-described by hand in four
//! places — the options struct itself, the exploration crate's
//! `Table1Options`, the CLI flag parser and the serve wire protocol —
//! so adding a knob meant four edits that could silently drift.
//! [`SEARCH_KNOBS`] is the one table they all derive from now: each
//! entry carries the knob's kebab-case name, its [`KnobKind`] (which
//! fixes both the CLI flag spellings and the wire token), and the
//! getter/setter tying it to [`SearchOptions`]. The CLI builds its
//! flag list (including the did-you-mean candidates) from the table,
//! and the serve protocol derives both `parse` and `to_line` from it,
//! so the next knob is added here and nowhere else.
//!
//! [`KnobOverrides`] is the wire-facing companion: a partial,
//! order-preserving set of knob settings that a request carries and a
//! server applies over its configured defaults
//! ([`KnobOverrides::apply_to`]).

use crate::SearchOptions;

/// Kind — and therefore CLI/wire arity — of one search knob.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KnobKind {
    /// Takes a numeric value: `--name <n>` on the CLI, `name=<n>` on
    /// the wire.
    Count,
    /// Numeric with `0` meaning "unlimited" (`None`), as the `limit`
    /// knob has always read it on both surfaces.
    OptionalCount,
    /// Default-off switch set by its bare positive form (`--bound` /
    /// `bound`); there is no negative spelling.
    EnabledBy,
    /// Default-on switch cleared by its bare `no-` form (`--no-cache`
    /// / `no-cache`); there is no positive spelling.
    DisabledBy,
    /// Default-on switch with both CLI spellings (`--name` /
    /// `--no-name`); the wire carries only the `no-` form.
    Paired,
}

/// A knob's concrete setting, as read from or written to
/// [`SearchOptions`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KnobSetting {
    /// Value of a [`KnobKind::Count`] knob.
    Count(usize),
    /// Value of a [`KnobKind::OptionalCount`] knob (`None` =
    /// unlimited).
    Limit(Option<usize>),
    /// State of a switch knob.
    Switch(bool),
}

/// One search-engine knob: its name, kind and [`SearchOptions`]
/// accessors. See [`SEARCH_KNOBS`].
pub struct SearchKnob {
    /// Kebab-case base name (`"dp-threads"`, `"bound-comm"`, …) — the
    /// CLI flag stem and the [`KnobOverrides`] key.
    pub name: &'static str,
    /// The serve protocol's token for this knob: the name itself for
    /// value knobs and [`KnobKind::EnabledBy`] switches, the `no-`
    /// spelling for [`KnobKind::DisabledBy`] and [`KnobKind::Paired`]
    /// (the wire carries only the non-default direction).
    pub wire: &'static str,
    /// Kind and surface arity.
    pub kind: KnobKind,
    set: fn(&mut SearchOptions, KnobSetting),
    get: fn(&SearchOptions) -> KnobSetting,
}

impl SearchKnob {
    /// Writes `setting` into `options`. Settings of a mismatched
    /// variant are ignored ([`SearchKnob::setting_from_count`] and
    /// [`SearchKnob::read`] only produce matching ones).
    pub fn apply(&self, options: &mut SearchOptions, setting: KnobSetting) {
        (self.set)(options, setting);
    }

    /// Reads the knob's current setting out of `options`.
    pub fn read(&self, options: &SearchOptions) -> KnobSetting {
        (self.get)(options)
    }

    /// The knob's setting under [`SearchOptions::default`].
    pub fn default_setting(&self) -> KnobSetting {
        (self.get)(&SearchOptions::default())
    }

    /// A setting from a raw numeric token, honouring the
    /// `0 = unlimited` rule of [`KnobKind::OptionalCount`].
    pub fn setting_from_count(&self, n: usize) -> KnobSetting {
        match self.kind {
            KnobKind::OptionalCount => KnobSetting::Limit((n != 0).then_some(n)),
            _ => KnobSetting::Count(n),
        }
    }

    /// Whether the knob takes a numeric value (versus a bare switch).
    pub fn takes_value(&self) -> bool {
        matches!(self.kind, KnobKind::Count | KnobKind::OptionalCount)
    }
}

fn set_threads(o: &mut SearchOptions, s: KnobSetting) {
    if let KnobSetting::Count(n) = s {
        o.threads = n;
    }
}

fn set_limit(o: &mut SearchOptions, s: KnobSetting) {
    match s {
        KnobSetting::Limit(v) => o.limit = v,
        KnobSetting::Count(n) => o.limit = (n != 0).then_some(n),
        KnobSetting::Switch(_) => {}
    }
}

fn set_dp_threads(o: &mut SearchOptions, s: KnobSetting) {
    if let KnobSetting::Count(n) = s {
        o.dp_threads = n;
    }
}

fn set_cache(o: &mut SearchOptions, s: KnobSetting) {
    if let KnobSetting::Switch(on) = s {
        o.cache = on;
    }
}

fn set_bound(o: &mut SearchOptions, s: KnobSetting) {
    if let KnobSetting::Switch(on) = s {
        o.bound = on;
    }
}

fn set_bound_comm(o: &mut SearchOptions, s: KnobSetting) {
    if let KnobSetting::Switch(on) = s {
        o.bound_comm = on;
    }
}

fn set_simd(o: &mut SearchOptions, s: KnobSetting) {
    if let KnobSetting::Switch(on) = s {
        o.simd = on;
    }
}

fn set_steal(o: &mut SearchOptions, s: KnobSetting) {
    if let KnobSetting::Switch(on) = s {
        o.steal = on;
    }
}

fn set_store_cap(o: &mut SearchOptions, s: KnobSetting) {
    if let KnobSetting::Count(n) = s {
        o.store_cap = n;
    }
}

fn set_warm(o: &mut SearchOptions, s: KnobSetting) {
    if let KnobSetting::Switch(on) = s {
        o.warm = on;
    }
}

fn set_incremental(o: &mut SearchOptions, s: KnobSetting) {
    if let KnobSetting::Switch(on) = s {
        o.incremental = on;
    }
}

fn set_deadline_ms(o: &mut SearchOptions, s: KnobSetting) {
    match s {
        KnobSetting::Limit(v) => o.deadline_ms = v.map(|n| n as u64),
        KnobSetting::Count(n) => o.deadline_ms = (n != 0).then_some(n as u64),
        KnobSetting::Switch(_) => {}
    }
}

/// Every engine knob, in the canonical surface order: the order CLI
/// usage lists them and the serve protocol's `to_line` emits them.
pub const SEARCH_KNOBS: &[SearchKnob] = &[
    SearchKnob {
        name: "threads",
        wire: "threads",
        kind: KnobKind::Count,
        set: set_threads,
        get: |o| KnobSetting::Count(o.threads),
    },
    SearchKnob {
        name: "limit",
        wire: "limit",
        kind: KnobKind::OptionalCount,
        set: set_limit,
        get: |o| KnobSetting::Limit(o.limit),
    },
    SearchKnob {
        name: "dp-threads",
        wire: "dp-threads",
        kind: KnobKind::Count,
        set: set_dp_threads,
        get: |o| KnobSetting::Count(o.dp_threads),
    },
    SearchKnob {
        name: "cache",
        wire: "no-cache",
        kind: KnobKind::DisabledBy,
        set: set_cache,
        get: |o| KnobSetting::Switch(o.cache),
    },
    SearchKnob {
        name: "bound",
        wire: "bound",
        kind: KnobKind::EnabledBy,
        set: set_bound,
        get: |o| KnobSetting::Switch(o.bound),
    },
    SearchKnob {
        name: "bound-comm",
        wire: "no-bound-comm",
        kind: KnobKind::Paired,
        set: set_bound_comm,
        get: |o| KnobSetting::Switch(o.bound_comm),
    },
    SearchKnob {
        name: "simd",
        wire: "no-simd",
        kind: KnobKind::Paired,
        set: set_simd,
        get: |o| KnobSetting::Switch(o.simd),
    },
    SearchKnob {
        name: "steal",
        wire: "no-steal",
        kind: KnobKind::Paired,
        set: set_steal,
        get: |o| KnobSetting::Switch(o.steal),
    },
    SearchKnob {
        name: "store-cap",
        wire: "store-cap",
        kind: KnobKind::Count,
        set: set_store_cap,
        get: |o| KnobSetting::Count(o.store_cap),
    },
    SearchKnob {
        name: "warm",
        wire: "no-warm",
        kind: KnobKind::DisabledBy,
        set: set_warm,
        get: |o| KnobSetting::Switch(o.warm),
    },
    SearchKnob {
        name: "incremental",
        wire: "no-incremental",
        kind: KnobKind::DisabledBy,
        set: set_incremental,
        get: |o| KnobSetting::Switch(o.incremental),
    },
    SearchKnob {
        name: "deadline-ms",
        wire: "deadline-ms",
        kind: KnobKind::OptionalCount,
        set: set_deadline_ms,
        get: |o| KnobSetting::Limit(o.deadline_ms.map(|n| n as usize)),
    },
];

/// Looks a knob up by its kebab-case name.
pub fn search_knob(name: &str) -> Option<&'static SearchKnob> {
    SEARCH_KNOBS.iter().find(|k| k.name == name)
}

/// Looks a knob up by its wire token ([`SearchKnob::wire`]) — the
/// serve protocol's parse-side inverse of the table.
pub fn search_knob_by_wire(token: &str) -> Option<&'static SearchKnob> {
    SEARCH_KNOBS.iter().find(|k| k.wire == token)
}

/// Partial overrides of [`SearchOptions`]: at most one setting per
/// knob of [`SEARCH_KNOBS`], iterated in table order. This is what a
/// serve request carries — only the knobs the client actually said —
/// and what the server folds over its configured defaults.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KnobOverrides {
    // One slot per SEARCH_KNOBS entry, so iteration order is table
    // order whatever order the settings arrived in.
    slots: Vec<Option<KnobSetting>>,
}

impl Default for KnobOverrides {
    fn default() -> Self {
        KnobOverrides {
            slots: vec![None; SEARCH_KNOBS.len()],
        }
    }
}

impl KnobOverrides {
    /// No overrides at all.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether no knob is overridden.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Sets knob `name`; `false` (and no change) when `name` is not in
    /// [`SEARCH_KNOBS`].
    pub fn set(&mut self, name: &str, setting: KnobSetting) -> bool {
        match SEARCH_KNOBS.iter().position(|k| k.name == name) {
            Some(i) => {
                self.slots[i] = Some(setting);
                true
            }
            None => false,
        }
    }

    /// The override for knob `name`, if any.
    pub fn get(&self, name: &str) -> Option<KnobSetting> {
        let i = SEARCH_KNOBS.iter().position(|k| k.name == name)?;
        self.slots[i]
    }

    /// Set knobs in table order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static SearchKnob, KnobSetting)> + '_ {
        SEARCH_KNOBS
            .iter()
            .zip(&self.slots)
            .filter_map(|(k, s)| s.map(|s| (k, s)))
    }

    /// `base` with every override applied, in table order.
    pub fn apply_to(&self, base: &SearchOptions) -> SearchOptions {
        let mut options = base.clone();
        for (knob, setting) in self.iter() {
            knob.apply(&mut options, setting);
        }
        options
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A setting guaranteed to differ from the knob's default.
    fn flipped(knob: &SearchKnob) -> KnobSetting {
        match knob.default_setting() {
            KnobSetting::Count(n) => KnobSetting::Count(n + 3),
            KnobSetting::Limit(None) => KnobSetting::Limit(Some(7)),
            KnobSetting::Limit(Some(n)) => KnobSetting::Limit(Some(n + 7)),
            KnobSetting::Switch(b) => KnobSetting::Switch(!b),
        }
    }

    #[test]
    fn every_knob_round_trips_set_then_get() {
        for knob in SEARCH_KNOBS {
            let mut options = SearchOptions::default();
            let want = flipped(knob);
            knob.apply(&mut options, want);
            assert_eq!(knob.read(&options), want, "knob {}", knob.name);
            // And no other knob moved.
            for other in SEARCH_KNOBS {
                if other.name != knob.name {
                    assert_eq!(
                        other.read(&options),
                        other.default_setting(),
                        "setting {} disturbed {}",
                        knob.name,
                        other.name
                    );
                }
            }
        }
    }

    #[test]
    fn table_matches_the_options_struct_defaults() {
        let d = SearchOptions::default();
        assert_eq!(
            search_knob("threads").unwrap().read(&d),
            KnobSetting::Count(0)
        );
        assert_eq!(
            search_knob("limit").unwrap().read(&d),
            KnobSetting::Limit(None)
        );
        assert_eq!(
            search_knob("dp-threads").unwrap().read(&d),
            KnobSetting::Count(1)
        );
        assert_eq!(
            search_knob("cache").unwrap().read(&d),
            KnobSetting::Switch(true)
        );
        assert_eq!(
            search_knob("bound").unwrap().read(&d),
            KnobSetting::Switch(false)
        );
        assert_eq!(
            search_knob("bound-comm").unwrap().read(&d),
            KnobSetting::Switch(true)
        );
        assert_eq!(
            search_knob("simd").unwrap().read(&d),
            KnobSetting::Switch(true)
        );
        assert_eq!(
            search_knob("steal").unwrap().read(&d),
            KnobSetting::Switch(true)
        );
        assert_eq!(
            search_knob("store-cap").unwrap().read(&d),
            KnobSetting::Count(8)
        );
        assert_eq!(
            search_knob("warm").unwrap().read(&d),
            KnobSetting::Switch(true)
        );
        assert_eq!(
            search_knob("incremental").unwrap().read(&d),
            KnobSetting::Switch(true)
        );
        assert_eq!(
            search_knob("deadline-ms").unwrap().read(&d),
            KnobSetting::Limit(None)
        );
        assert!(search_knob("no-such-knob").is_none());
    }

    #[test]
    fn wire_tokens_follow_the_kind_rule() {
        for knob in SEARCH_KNOBS {
            let want = match knob.kind {
                KnobKind::DisabledBy | KnobKind::Paired => format!("no-{}", knob.name),
                _ => knob.name.to_owned(),
            };
            assert_eq!(knob.wire, want, "knob {}", knob.name);
            assert_eq!(
                search_knob_by_wire(knob.wire).unwrap().name,
                knob.name,
                "wire lookup inverts the table"
            );
        }
        assert!(
            search_knob_by_wire("cache").is_none(),
            "only the wire spelling resolves"
        );
        assert!(search_knob_by_wire("simd").is_none());
    }

    #[test]
    fn optional_count_reads_zero_as_unlimited() {
        let limit = search_knob("limit").unwrap();
        assert_eq!(limit.setting_from_count(0), KnobSetting::Limit(None));
        assert_eq!(limit.setting_from_count(9), KnobSetting::Limit(Some(9)));
        assert!(limit.takes_value());
        let threads = search_knob("threads").unwrap();
        assert_eq!(threads.setting_from_count(0), KnobSetting::Count(0));
        assert!(!search_knob("steal").unwrap().takes_value());
    }

    #[test]
    fn overrides_apply_in_one_pass_and_keep_table_order() {
        let mut over = KnobOverrides::new();
        assert!(over.is_empty());
        // Insert out of table order on purpose.
        assert!(over.set("steal", KnobSetting::Switch(false)));
        assert!(over.set("threads", KnobSetting::Count(4)));
        assert!(over.set("limit", KnobSetting::Limit(None)));
        assert!(!over.set("nonsense", KnobSetting::Count(1)));
        assert!(!over.is_empty());
        let names: Vec<&str> = over.iter().map(|(k, _)| k.name).collect();
        assert_eq!(names, ["threads", "limit", "steal"], "table order");
        assert_eq!(over.get("threads"), Some(KnobSetting::Count(4)));
        assert_eq!(over.get("cache"), None);

        let base = SearchOptions {
            limit: Some(200_000),
            ..SearchOptions::default()
        };
        let merged = over.apply_to(&base);
        assert_eq!(merged.threads, 4);
        assert_eq!(merged.limit, None, "limit override clears the default");
        assert!(!merged.steal);
        assert!(merged.cache, "untouched knobs keep the base value");
        assert!(merged.simd);
    }
}
