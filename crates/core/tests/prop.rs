//! Property tests for the allocation algorithm's components.

use lycos_core::{allocate, AllocConfig, FuroTable, RMap, Restrictions};
use lycos_hwlib::{Area, EcaModel, FuId, HwLibrary};
use lycos_ir::{Bsb, BsbArray, BsbId, BsbOrigin, Dfg, OpKind};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_app(max_blocks: usize, max_ops: usize) -> impl Strategy<Value = BsbArray> {
    let kinds = prop::sample::select(vec![
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Const,
        OpKind::Lt,
    ]);
    prop::collection::vec(
        (
            prop::collection::vec(kinds, 1..=max_ops),
            prop::collection::vec(any::<(u8, u8)>(), 0..=max_ops),
            1u64..200,
        ),
        1..=max_blocks,
    )
    .prop_map(|blocks| {
        BsbArray::from_bsbs(
            "prop",
            blocks
                .into_iter()
                .enumerate()
                .map(|(i, (ops, edges, profile))| {
                    let mut dfg = Dfg::new();
                    let ids: Vec<_> = ops.into_iter().map(|k| dfg.add_op(k)).collect();
                    for (a, b) in edges {
                        let (a, b) = (a as usize % ids.len(), b as usize % ids.len());
                        if a < b {
                            dfg.add_edge(ids[a], ids[b]).unwrap();
                        }
                    }
                    Bsb {
                        id: BsbId(i as u32),
                        name: format!("b{i}"),
                        dfg,
                        reads: BTreeSet::new(),
                        writes: BTreeSet::new(),
                        profile,
                        origin: BsbOrigin::Body,
                    }
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FURO is non-negative, zero for singleton kinds, and scales
    /// linearly with the profile count.
    #[test]
    fn furo_properties(app in arb_app(4, 8)) {
        let lib = HwLibrary::standard();
        let table = FuroTable::compute(&app, &lib).unwrap();
        for (k, bsb) in app.iter().enumerate() {
            for kind in bsb.dfg.kinds_present() {
                let f = table.furo(k, kind);
                prop_assert!(f >= 0.0);
                prop_assert!(f.is_finite());
                if bsb.dfg.count_of(kind) < 2 {
                    prop_assert_eq!(f, 0.0);
                }
            }
        }

        // Linearity in the profile count: double every profile.
        let doubled = BsbArray::from_bsbs(
            "x2",
            app.iter()
                .map(|b| {
                    let mut c = b.clone();
                    c.profile *= 2;
                    c
                })
                .collect(),
        );
        let table2 = FuroTable::compute(&doubled, &lib).unwrap();
        for (k, bsb) in app.iter().enumerate() {
            for kind in bsb.dfg.kinds_present() {
                let ratio_ok = (table2.furo(k, kind) - 2.0 * table.furo(k, kind)).abs() < 1e-9;
                prop_assert!(ratio_ok, "profile linearity violated");
            }
        }
    }

    /// Restrictions from ASAP never exceed static op counts and are
    /// positive for every kind the app uses.
    #[test]
    fn restriction_bounds(app in arb_app(4, 8)) {
        let lib = HwLibrary::standard();
        let restr = Restrictions::from_asap(&app, &lib).unwrap();
        let mut static_max: std::collections::BTreeMap<FuId, u32> = Default::default();
        for bsb in &app {
            let mut per_block: std::collections::BTreeMap<FuId, u32> = Default::default();
            for op in bsb.dfg.ops() {
                *per_block.entry(lib.fu_for(op.kind).unwrap()).or_insert(0) += 1;
            }
            for (fu, n) in per_block {
                let e = static_max.entry(fu).or_insert(0);
                *e = (*e).max(n);
            }
        }
        for (fu, cap) in restr.iter() {
            prop_assert!(cap >= 1);
            prop_assert!(cap <= static_max[&fu],
                "cap {} exceeds static bound {}", cap, static_max[&fu]);
        }
    }

    /// Tightening a restriction never enlarges the allocation of that
    /// kind.
    #[test]
    fn tightening_shrinks_allocation(app in arb_app(4, 8), budget in 1_000u64..20_000) {
        let lib = HwLibrary::standard();
        let eca = EcaModel::standard();
        let area = Area::new(budget);
        let restr = Restrictions::from_asap(&app, &lib).unwrap();
        let base = allocate(&app, &lib, &eca, area, &restr, &AllocConfig::default())
            .unwrap();
        // Tighten the most-allocated kind to one.
        if let Some((fu, _)) = base.allocation.iter().max_by_key(|&(_, c)| c) {
            let mut tighter = restr.clone();
            tighter.tighten(fu, 1);
            let out = allocate(&app, &lib, &eca, area, &tighter, &AllocConfig::default())
                .unwrap();
            prop_assert!(out.allocation.count(fu) <= 1);
        }
    }

    /// Required resources: one unit per kind class, covering exactly
    /// the kinds present.
    #[test]
    fn required_resources_cover_kinds(app in arb_app(3, 8)) {
        let lib = HwLibrary::standard();
        for bsb in &app {
            let req = lycos_core::required_resources(bsb, &lib).unwrap();
            for kind in bsb.dfg.kinds_present() {
                prop_assert!(req.count(lib.fu_for(kind).unwrap()) == 1);
            }
            prop_assert!(req.total_units() as usize <= bsb.dfg.kinds_present().len());
        }
    }

    /// RMap difference then union restores a superset (Definition 1).
    #[test]
    fn rmap_difference_union_roundtrip(
        a in prop::collection::btree_map(0u32..6, 1u32..6, 0..5),
        b in prop::collection::btree_map(0u32..6, 1u32..6, 0..5),
    ) {
        let a: RMap = a.into_iter().map(|(k, v)| (FuId(k), v)).collect();
        let b: RMap = b.into_iter().map(|(k, v)| (FuId(k), v)).collect();
        prop_assert!(b.union(&a.difference(&b)).covers(&a));
        // Difference is monotone: (a ∪ c) \ b ⊇ a \ b.
        let c: RMap = [(FuId(0), 1)].into_iter().collect();
        prop_assert!(a.union(&c).difference(&b).covers(&a.difference(&b)));
    }

    /// The Definition 1 algebra: `∪` is associative and commutative,
    /// `A \ A = ∅`, and `|A ∪ B| ≤ |A| + |B|` (with multiset union the
    /// bound is tight).
    #[test]
    fn rmap_union_is_an_abelian_monoid(
        a in prop::collection::btree_map(0u32..8, 1u32..6, 0..6),
        b in prop::collection::btree_map(0u32..8, 1u32..6, 0..6),
        c in prop::collection::btree_map(0u32..8, 1u32..6, 0..6),
    ) {
        let a: RMap = a.into_iter().map(|(k, v)| (FuId(k), v)).collect();
        let b: RMap = b.into_iter().map(|(k, v)| (FuId(k), v)).collect();
        let c: RMap = c.into_iter().map(|(k, v)| (FuId(k), v)).collect();

        // Associativity and commutativity.
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&b), b.union(&a));
        // Identity.
        prop_assert_eq!(a.union(&RMap::new()), a.clone());

        // A \ A = ∅.
        prop_assert!(a.difference(&a).is_empty());
        prop_assert_eq!(a.difference(&a), RMap::new());

        // |A ∪ B| ≤ |A| + |B| (tight for multiset union), and counts
        // add exactly per kind.
        let u = a.union(&b);
        prop_assert!(u.total_units() <= a.total_units() + b.total_units());
        for (fu, count) in u.iter() {
            prop_assert_eq!(count, a.count(fu) + b.count(fu));
        }
    }
}
