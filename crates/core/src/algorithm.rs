//! The hardware resource allocation algorithm — Algorithm 1 of the paper.
//!
//! The algorithm produces a data-path allocation by building a *pseudo
//! partition*: starting with every BSB in software, it repeatedly
//! examines the most urgent block. A software block is moved to hardware
//! if the remaining area pays for its controller (ECA) plus whatever
//! required units the allocation still lacks; a block already in
//! hardware asks for one more unit of its most urgent resource. Whenever
//! the allocation changes, urgencies are recomputed and the scan
//! restarts from the most urgent block. The loop ends when a whole pass
//! makes no change or the area is exhausted.

use crate::{max_urgency, prioritize, AllocError, FuroTable, RMap, Restrictions};
use lycos_hwlib::{Area, EcaModel, FuId, HwLibrary};
use lycos_ir::{Bsb, BsbArray, BsbId, OpKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// How the number of controller states of a BSB is estimated for the
/// ECA cost (§4.2, §5.1).
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub enum StateEstimate {
    /// The paper's choice: ASAP schedule length. Optimistic — the real,
    /// resource-constrained schedule is never shorter.
    #[default]
    Asap,
    /// Fully serial schedule (sum of operation latencies). Pessimistic —
    /// a lower bound on no block, an upper bound on every block.
    Serial,
    /// ASAP length scaled by a factor (≥ 1.0 stretches towards the
    /// serial estimate); used by the §5.1 optimism ablation.
    Scaled(f64),
}

/// Tuning knobs for [`allocate`]. The default reproduces the paper.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AllocConfig {
    /// Controller state estimation mode.
    pub state_estimate: StateEstimate,
    /// Record a step-by-step [`TraceEvent`] log in the outcome.
    pub record_trace: bool,
}

/// One step of the allocation run (recorded when
/// [`AllocConfig::record_trace`] is set).
#[derive(Clone, PartialEq, Debug)]
pub enum TraceEvent {
    /// A software block moved to hardware.
    Moved {
        /// The block.
        bsb: BsbId,
        /// Units newly allocated for it.
        req: RMap,
        /// Total charge (ECA + new units).
        cost: Area,
    },
    /// A hardware block received one more unit for its most urgent
    /// operation type.
    Augmented {
        /// The block.
        bsb: BsbId,
        /// The unit kind added.
        fu: FuId,
    },
    /// The block was examined but nothing could be done.
    Skipped {
        /// The block.
        bsb: BsbId,
    },
    /// Urgencies changed; the scan restarted from the front.
    Restarted,
}

/// The result of an allocation run.
#[derive(Clone, PartialEq, Debug)]
pub struct AllocOutcome {
    /// The allocated data path.
    pub allocation: RMap,
    /// Area left over after data path and pseudo-partition controllers.
    pub remaining: Area,
    /// Which blocks the pseudo partition placed in hardware.
    pub in_hw: Vec<bool>,
    /// Estimated controller area of the pseudo-hardware blocks.
    pub controller_area: Area,
    /// Number of priority recomputations (including the initial one).
    pub passes: usize,
    /// Number of main-loop iterations.
    pub steps: usize,
    /// Step-by-step log (empty unless requested).
    pub trace: Vec<TraceEvent>,
}

impl AllocOutcome {
    /// Ids of the pseudo-hardware blocks, in array order.
    pub fn hw_bsbs(&self) -> Vec<BsbId> {
        self.in_hw
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h)
            .map(|(i, _)| BsbId(i as u32))
            .collect()
    }

    /// Data-path area of the allocation.
    pub fn datapath_area(&self, lib: &HwLibrary) -> Area {
        self.allocation.area(lib)
    }

    /// Data-path share of the used hardware area (the paper's *Size*
    /// column, at pseudo-partition time): data path / (data path +
    /// controllers).
    pub fn datapath_fraction(&self, lib: &HwLibrary) -> f64 {
        let dp = self.datapath_area(lib);
        dp.fraction_of(dp + self.controller_area)
    }
}

/// The minimum set of units needed to execute every operation of `bsb`
/// (at most one unit of each kind — `GetReqResources`).
///
/// # Errors
///
/// [`AllocError::Hw`] if an operation kind has no default unit in `lib`.
pub fn required_resources(bsb: &Bsb, lib: &HwLibrary) -> Result<RMap, AllocError> {
    let mut kinds: BTreeSet<FuId> = BTreeSet::new();
    for op in bsb.dfg.kinds_present() {
        kinds.insert(lib.fu_for(op)?);
    }
    Ok(kinds.into_iter().map(|fu| (fu, 1)).collect())
}

/// `MostUrgentResource(B)` — the unit kind executing the operation type
/// with the highest urgency in `bsb`, or `None` for a block with no
/// operations.
///
/// # Errors
///
/// [`AllocError::Hw`] if the urgent operation has no default unit.
pub fn most_urgent_resource(
    bsb: &Bsb,
    bsb_index: usize,
    furo: &FuroTable,
    allocation: &RMap,
    lib: &HwLibrary,
) -> Result<Option<FuId>, AllocError> {
    let (_, kind) = max_urgency(furo, bsb, bsb_index, true, allocation, lib);
    let kind: Option<OpKind> = kind.or_else(|| bsb.dfg.kinds_present().into_iter().next());
    match kind {
        Some(op) => Ok(Some(lib.fu_for(op)?)),
        None => Ok(None),
    }
}

/// Runs Algorithm 1: allocates data-path resources for `bsbs` within
/// `area`, honouring `restrictions`.
///
/// # Errors
///
/// [`AllocError`] if a block cannot be scheduled or an operation has no
/// default unit in the library.
///
/// # Examples
///
/// ```
/// use lycos_core::{allocate, AllocConfig, Restrictions};
/// use lycos_hwlib::{Area, EcaModel, HwLibrary};
/// use lycos_ir::{extract_bsbs, Cdfg, CdfgNode, DfgBuilder, OpKind, TripCount};
///
/// let mut b = DfgBuilder::new();
/// let m1 = b.binary(OpKind::Mul, "a".into(), "b".into());
/// b.assign("x", m1);
/// let m2 = b.binary(OpKind::Mul, "c".into(), "d".into());
/// b.assign("y", m2);
/// let cdfg = Cdfg::new(
///     "hot",
///     CdfgNode::Loop {
///         label: "l".into(),
///         test: None,
///         body: Box::new(CdfgNode::block("body", b.finish())),
///         trip: TripCount::Fixed(1000),
///     },
/// );
/// let bsbs = extract_bsbs(&cdfg, None)?;
/// let lib = HwLibrary::standard();
/// let eca = EcaModel::standard();
/// let restr = Restrictions::from_asap(&bsbs, &lib)?;
///
/// let out = allocate(&bsbs, &lib, &eca, Area::new(8000), &restr,
///                    &AllocConfig::default())?;
/// let mult = lib.fu_for(OpKind::Mul).unwrap();
/// assert_eq!(out.allocation.count(mult), 2, "both multiplies in parallel");
/// assert!(out.in_hw[0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn allocate(
    bsbs: &BsbArray,
    lib: &HwLibrary,
    eca: &EcaModel,
    area: Area,
    restrictions: &Restrictions,
    config: &AllocConfig,
) -> Result<AllocOutcome, AllocError> {
    let furo = FuroTable::compute(bsbs, lib)?;
    let l = bsbs.len();

    // Controller state estimate per block, per the configured mode.
    let mut states = Vec::with_capacity(l);
    for (k, bsb) in bsbs.iter().enumerate() {
        let n = match config.state_estimate {
            StateEstimate::Asap => furo.asap_length(k),
            StateEstimate::Serial => {
                let mut sum = 0u64;
                for op in bsb.dfg.ops() {
                    let fu = lib.fu_for(op.kind)?;
                    sum += lib.fu(fu).latency as u64;
                }
                sum
            }
            StateEstimate::Scaled(f) => (furo.asap_length(k) as f64 * f).ceil() as u64,
        };
        states.push(n);
    }

    let mut allocation = RMap::new();
    let mut remaining = area;
    let mut in_hw = vec![false; l];
    let mut controller_area = Area::ZERO;
    let mut trace = Vec::new();
    let mut order = prioritize(bsbs, &furo, &in_hw, &allocation, lib);
    let mut passes = 1usize;
    let mut steps = 0usize;

    let mut i = 0usize;
    while i < l && remaining > Area::ZERO {
        steps += 1;
        let k = order[i];
        let bsb = &bsbs[k];
        let mut changed = false;

        if in_hw[k] {
            // Some operation is urgent: try to add one more unit for it.
            if let Some(fu) = most_urgent_resource(bsb, k, &furo, &allocation, lib)? {
                let unit_area = lib.area_of(fu);
                // Algorithm 1 verbatim: Area(R) ≤ RemainingArea and
                // Allocation(R) + 1 ≤ Restrictions(R).
                #[allow(clippy::int_plus_one)]
                if unit_area <= remaining && allocation.count(fu) + 1 <= restrictions.cap(fu) {
                    allocation.increment(fu);
                    remaining -= unit_area;
                    changed = true;
                    if config.record_trace {
                        trace.push(TraceEvent::Augmented { bsb: bsb.id, fu });
                    }
                }
            }
        } else {
            let req = required_resources(bsb, lib)?.difference(&allocation);
            let eca_area = eca.controller_area(states[k]);
            let cost = eca_area + req.area(lib);
            if cost <= remaining {
                allocation = allocation.union(&req);
                remaining -= cost;
                controller_area += eca_area;
                in_hw[k] = true;
                // Note: moving with an empty `req` spends area on the
                // controller but does not change the *allocation*, so it
                // does not trigger re-prioritisation (Algorithm 1).
                changed = !req.is_empty();
                if config.record_trace {
                    trace.push(TraceEvent::Moved {
                        bsb: bsb.id,
                        req,
                        cost,
                    });
                }
            }
        }

        if changed {
            order = prioritize(bsbs, &furo, &in_hw, &allocation, lib);
            passes += 1;
            i = 0;
            if config.record_trace {
                trace.push(TraceEvent::Restarted);
            }
        } else {
            if config.record_trace {
                trace.push(TraceEvent::Skipped { bsb: bsb.id });
            }
            i += 1;
        }
    }

    Ok(AllocOutcome {
        allocation,
        remaining,
        in_hw,
        controller_area,
        passes,
        steps,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lycos_ir::{BsbOrigin, Dfg};
    use std::collections::BTreeSet as VarSet;

    fn lib() -> HwLibrary {
        HwLibrary::standard()
    }

    fn eca() -> EcaModel {
        EcaModel::standard()
    }

    fn bsb(i: u32, dfg: Dfg, profile: u64) -> Bsb {
        Bsb {
            id: BsbId(i),
            name: format!("b{i}"),
            dfg,
            reads: VarSet::new(),
            writes: VarSet::new(),
            profile,
            origin: BsbOrigin::Body,
        }
    }

    /// n independent ops of `kind`.
    fn parallel(kind: OpKind, n: usize) -> Dfg {
        let mut g = Dfg::new();
        for _ in 0..n {
            g.add_op(kind);
        }
        g
    }

    fn run(bsbs: &BsbArray, area: u64) -> AllocOutcome {
        let lib = lib();
        let restr = Restrictions::from_asap(bsbs, &lib).unwrap();
        allocate(
            bsbs,
            &lib,
            &eca(),
            Area::new(area),
            &restr,
            &AllocConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn zero_area_allocates_nothing() {
        let bsbs = BsbArray::from_bsbs("t", vec![bsb(0, parallel(OpKind::Add, 4), 10)]);
        let out = run(&bsbs, 0);
        assert!(out.allocation.is_empty());
        assert!(out.hw_bsbs().is_empty());
        assert_eq!(out.remaining, Area::ZERO);
    }

    #[test]
    fn single_block_gets_required_resources() {
        let mut g = Dfg::new();
        let a = g.add_op(OpKind::Add);
        let m = g.add_op(OpKind::Mul);
        g.add_edge(a, m).unwrap();
        let bsbs = BsbArray::from_bsbs("t", vec![bsb(0, g, 10)]);
        let out = run(&bsbs, 10_000);
        let lib = lib();
        assert_eq!(out.allocation.count(lib.fu_for(OpKind::Add).unwrap()), 1);
        assert_eq!(out.allocation.count(lib.fu_for(OpKind::Mul).unwrap()), 1);
        assert!(out.in_hw[0]);
        // Chain ⇒ no parallelism ⇒ restrictions stop further units.
        assert_eq!(out.allocation.total_units(), 2);
    }

    #[test]
    fn parallel_block_receives_extra_units_up_to_restriction() {
        let bsbs = BsbArray::from_bsbs("t", vec![bsb(0, parallel(OpKind::Add, 4), 50)]);
        let out = run(&bsbs, 100_000);
        let adder = lib().fu_for(OpKind::Add).unwrap();
        assert_eq!(
            out.allocation.count(adder),
            4,
            "urgency keeps adding adders until the ASAP cap"
        );
    }

    #[test]
    fn area_budget_is_never_exceeded() {
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![
                bsb(0, parallel(OpKind::Mul, 3), 40),
                bsb(1, parallel(OpKind::Add, 5), 30),
                bsb(2, parallel(OpKind::Div, 2), 20),
            ],
        );
        for budget in [0u64, 100, 500, 2_500, 6_000, 20_000, 100_000] {
            let out = run(&bsbs, budget);
            let lib = lib();
            let spent = out.allocation.area(&lib) + out.controller_area;
            assert!(
                spent + out.remaining == Area::new(budget),
                "area accounting must balance at budget {budget}"
            );
        }
    }

    #[test]
    fn restrictions_are_never_violated() {
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![
                bsb(0, parallel(OpKind::Add, 6), 99),
                bsb(1, parallel(OpKind::Add, 3), 98),
            ],
        );
        let lib = lib();
        let mut restr = Restrictions::from_asap(&bsbs, &lib).unwrap();
        let adder = lib.fu_for(OpKind::Add).unwrap();
        restr.tighten(adder, 2);
        let out = allocate(
            &bsbs,
            &lib,
            &eca(),
            Area::new(1_000_000),
            &restr,
            &AllocConfig::default(),
        )
        .unwrap();
        assert_eq!(out.allocation.count(adder), 2, "user cap respected");
    }

    #[test]
    fn hot_blocks_move_first() {
        // Two identical blocks, wildly different profiles, area for only
        // one block's controller + units.
        let hot = bsb(0, parallel(OpKind::Mul, 2), 1000);
        let cold = bsb(1, parallel(OpKind::Mul, 2), 1);
        let bsbs = BsbArray::from_bsbs("t", vec![cold.clone(), hot.clone()]);
        // 2 mults = 4000; controller ~ tiny. Budget 4100 : only one
        // block's worth of units, shared by both if both move.
        let out = run(&bsbs, 4_100);
        // The hot block (index 1 in this array) must be in hardware.
        assert!(out.in_hw[1], "hot block wins the area");
    }

    #[test]
    fn second_block_reuses_existing_units() {
        // Both blocks need an adder; the second move costs only ECA.
        let b0 = bsb(0, parallel(OpKind::Add, 1), 10);
        let b1 = bsb(1, parallel(OpKind::Add, 1), 9);
        let bsbs = BsbArray::from_bsbs("t", vec![b0, b1]);
        let out = run(&bsbs, 100_000);
        let adder = lib().fu_for(OpKind::Add).unwrap();
        assert!(out.in_hw.iter().all(|&h| h), "both blocks fit");
        assert_eq!(
            out.allocation.count(adder),
            1,
            "single-op blocks share one adder (ASAP cap 1)"
        );
    }

    #[test]
    fn outcome_accounting_is_consistent() {
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![
                bsb(0, parallel(OpKind::Add, 3), 7),
                bsb(1, parallel(OpKind::Mul, 2), 6),
            ],
        );
        let out = run(&bsbs, 50_000);
        let lib = lib();
        assert_eq!(
            out.hw_bsbs().len(),
            out.in_hw.iter().filter(|&&h| h).count()
        );
        let frac = out.datapath_fraction(&lib);
        assert!((0.0..=1.0).contains(&frac));
        assert!(out.passes >= 1);
        assert!(out.steps >= 1);
    }

    #[test]
    fn trace_records_moves_and_augments() {
        let bsbs = BsbArray::from_bsbs("t", vec![bsb(0, parallel(OpKind::Add, 3), 7)]);
        let lib = lib();
        let restr = Restrictions::from_asap(&bsbs, &lib).unwrap();
        let out = allocate(
            &bsbs,
            &lib,
            &eca(),
            Area::new(50_000),
            &restr,
            &AllocConfig {
                record_trace: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Moved { .. })));
        assert!(out
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Augmented { .. })));
        assert!(out.trace.iter().any(|e| matches!(e, TraceEvent::Restarted)));
    }

    #[test]
    fn serial_state_estimate_shrinks_allocation() {
        // A block with parallel constant loads: ASAP says 1 state
        // (cheap controller), serial says 8 states (expensive). With a
        // tight budget the serial estimate moves fewer blocks / units.
        let mut blocks = Vec::new();
        for i in 0..4 {
            blocks.push(bsb(i, parallel(OpKind::Const, 8), 100));
        }
        let bsbs = BsbArray::from_bsbs("t", blocks);
        let lib = lib();
        let restr = Restrictions::from_asap(&bsbs, &lib).unwrap();
        let budget = Area::new(1_000);
        let optimistic =
            allocate(&bsbs, &lib, &eca(), budget, &restr, &AllocConfig::default()).unwrap();
        let pessimistic = allocate(
            &bsbs,
            &lib,
            &eca(),
            budget,
            &restr,
            &AllocConfig {
                state_estimate: StateEstimate::Serial,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            pessimistic.allocation.total_units() <= optimistic.allocation.total_units(),
            "pessimistic controllers leave less room for units"
        );
    }

    #[test]
    fn most_urgent_resource_for_uniform_block() {
        let bsbs = BsbArray::from_bsbs("t", vec![bsb(0, parallel(OpKind::Mul, 2), 5)]);
        let lib = lib();
        let furo = FuroTable::compute(&bsbs, &lib).unwrap();
        let fu = most_urgent_resource(&bsbs[0], 0, &furo, &RMap::new(), &lib)
            .unwrap()
            .unwrap();
        assert_eq!(lib.fu(fu).name, "multiplier");
    }

    #[test]
    fn empty_block_has_no_urgent_resource() {
        let bsbs = BsbArray::from_bsbs("t", vec![bsb(0, Dfg::new(), 5)]);
        let lib = lib();
        let furo = FuroTable::compute(&bsbs, &lib).unwrap();
        assert_eq!(
            most_urgent_resource(&bsbs[0], 0, &furo, &RMap::new(), &lib).unwrap(),
            None
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![
                bsb(0, parallel(OpKind::Mul, 3), 40),
                bsb(1, parallel(OpKind::Add, 5), 30),
            ],
        );
        for budget in [1_000u64, 2_500, 5_000, 10_000] {
            let a = run(&bsbs, budget);
            let b = run(&bsbs, budget);
            assert_eq!(a.allocation, b.allocation, "budget {budget}");
            assert_eq!(a.in_hw, b.in_hw);
            assert_eq!(a.steps, b.steps);
        }
    }

    /// Greedy pre-allocation is *not* monotone in the budget: a larger
    /// budget can tempt the algorithm into moving an expensive block
    /// whose units then starve cheaper ones. This pins the documented
    /// behaviour so a future "fix" does not silently change it.
    #[test]
    fn non_monotone_budget_behaviour_is_possible() {
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![
                bsb(0, parallel(OpKind::Mul, 3), 40),
                bsb(1, parallel(OpKind::Add, 5), 30),
            ],
        );
        let small = run(&bsbs, 1_000).allocation.total_units();
        let large = run(&bsbs, 2_700).allocation.total_units();
        assert_eq!(small, 4, "budget 1000: four adders");
        assert_eq!(large, 3, "budget 2700: two adders + one multiplier");
    }
}
