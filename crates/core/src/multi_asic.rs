//! Multi-ASIC targets — the paper's second future-work extension (§6).
//!
//! The base flow targets one processor plus one ASIC. This extension
//! generalises to several ASICs, each with its own area budget and its
//! own data path. BSBs are assigned to ASICs by splitting the BSB array
//! into contiguous segments balanced by dynamic operation count
//! (contiguity keeps communication local: adjacent blocks stay on the
//! same device), then Algorithm 1 runs independently per segment.

use crate::{allocate, AllocConfig, AllocError, AllocOutcome, Restrictions};
use lycos_hwlib::{Area, EcaModel, HwLibrary};
use lycos_ir::{BsbArray, BsbId};
use std::ops::Range;

/// The per-ASIC area budgets for a multi-ASIC target.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsicPlan {
    /// One area budget per ASIC (at least one).
    pub budgets: Vec<Area>,
}

impl AsicPlan {
    /// A plan with the given budgets.
    ///
    /// # Panics
    ///
    /// Panics if `budgets` is empty — a target needs at least one ASIC.
    pub fn new(budgets: Vec<Area>) -> Self {
        assert!(
            !budgets.is_empty(),
            "multi-ASIC plan needs at least one ASIC"
        );
        AsicPlan { budgets }
    }

    /// Number of ASICs.
    pub fn asic_count(&self) -> usize {
        self.budgets.len()
    }
}

/// Result of a multi-ASIC allocation.
#[derive(Clone, PartialEq, Debug)]
pub struct MultiAsicOutcome {
    /// The BSB index ranges assigned to each ASIC (contiguous,
    /// non-overlapping, covering the whole array).
    pub segments: Vec<Range<usize>>,
    /// Per-ASIC allocation outcomes (indices match `segments`).
    pub outcomes: Vec<AllocOutcome>,
}

impl MultiAsicOutcome {
    /// Total data-path area across all ASICs.
    pub fn total_datapath_area(&self, lib: &HwLibrary) -> Area {
        self.outcomes.iter().map(|o| o.allocation.area(lib)).sum()
    }

    /// All pseudo-hardware blocks as `(asic, bsb)` pairs, with BSB ids
    /// in the *original* array's numbering.
    pub fn hw_bsbs(&self) -> Vec<(usize, BsbId)> {
        let mut out = Vec::new();
        for (asic, (seg, o)) in self.segments.iter().zip(&self.outcomes).enumerate() {
            for (local, &h) in o.in_hw.iter().enumerate() {
                if h {
                    out.push((asic, BsbId((seg.start + local) as u32)));
                }
            }
        }
        out
    }

    /// The ASIC a BSB was assigned to.
    pub fn asic_of(&self, bsb: BsbId) -> Option<usize> {
        self.segments
            .iter()
            .position(|seg| seg.contains(&bsb.index()))
    }
}

/// Splits `bsbs` into `k` contiguous segments with approximately equal
/// dynamic operation counts.
fn balanced_segments(bsbs: &BsbArray, k: usize) -> Vec<Range<usize>> {
    let n = bsbs.len();
    if k == 1 {
        // One segment spanning the whole array (not a range of ranges).
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..n];
    }
    let total: u64 = bsbs.iter().map(|b| b.dynamic_ops().max(1)).sum();
    let per_segment = total.div_ceil(k as u64).max(1);
    let mut segments: Vec<Range<usize>> = Vec::with_capacity(k);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, b) in bsbs.iter().enumerate() {
        if segments.len() == k - 1 {
            break;
        }
        acc += b.dynamic_ops().max(1);
        let open_segments = (k - 1) - segments.len(); // still to close
        let blocks_after = n - (i + 1);
        // Close when full, or when the remaining blocks are only just
        // enough to keep the remaining segments non-empty.
        if acc >= per_segment || blocks_after == open_segments - 1 {
            segments.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    segments.push(start..n);
    while segments.len() < k {
        segments.push(n..n);
    }
    segments
}

/// Allocates data paths for a multi-ASIC target.
///
/// # Errors
///
/// Propagates [`AllocError`] from any per-segment run.
///
/// # Examples
///
/// ```
/// use lycos_core::{allocate_multi_asic, AllocConfig, AsicPlan};
/// use lycos_hwlib::{Area, EcaModel, HwLibrary};
/// use lycos_ir::{extract_bsbs, Cdfg, CdfgNode, DfgBuilder, OpKind};
///
/// let mut blocks = Vec::new();
/// for i in 0..4 {
///     let mut b = DfgBuilder::new();
///     let t = b.binary(OpKind::Mul, "x".into(), "y".into());
///     b.assign("t", t);
///     blocks.push(CdfgNode::block(format!("b{i}"), b.finish()));
/// }
/// let cdfg = Cdfg::new("app", CdfgNode::seq(blocks));
/// let bsbs = extract_bsbs(&cdfg, None)?;
///
/// let plan = AsicPlan::new(vec![Area::new(4000), Area::new(4000)]);
/// let out = allocate_multi_asic(&bsbs, &HwLibrary::standard(),
///                               &EcaModel::standard(), &plan,
///                               &AllocConfig::default())?;
/// assert_eq!(out.segments.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn allocate_multi_asic(
    bsbs: &BsbArray,
    lib: &HwLibrary,
    eca: &EcaModel,
    plan: &AsicPlan,
    config: &AllocConfig,
) -> Result<MultiAsicOutcome, AllocError> {
    let segments = balanced_segments(bsbs, plan.asic_count());
    let mut outcomes = Vec::with_capacity(segments.len());
    for (seg, &budget) in segments.iter().zip(&plan.budgets) {
        let sub = BsbArray::from_bsbs(
            format!("{}:{}..{}", bsbs.app_name(), seg.start, seg.end),
            bsbs.as_slice()[seg.clone()].to_vec(),
        );
        let restrictions = Restrictions::from_asap(&sub, lib)?;
        outcomes.push(allocate(&sub, lib, eca, budget, &restrictions, config)?);
    }
    Ok(MultiAsicOutcome { segments, outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lycos_ir::{Bsb, BsbOrigin, Dfg, OpKind};
    use std::collections::BTreeSet;

    fn bsb(i: u32, kind: OpKind, n: usize, profile: u64) -> Bsb {
        let mut dfg = Dfg::new();
        for _ in 0..n {
            dfg.add_op(kind);
        }
        Bsb {
            id: BsbId(i),
            name: format!("b{i}"),
            dfg,
            reads: BTreeSet::new(),
            writes: BTreeSet::new(),
            profile,
            origin: BsbOrigin::Body,
        }
    }

    fn app() -> BsbArray {
        BsbArray::from_bsbs(
            "m",
            vec![
                bsb(0, OpKind::Add, 3, 10),
                bsb(1, OpKind::Mul, 2, 10),
                bsb(2, OpKind::Add, 2, 10),
                bsb(3, OpKind::Sub, 2, 10),
            ],
        )
    }

    #[test]
    fn segments_cover_and_do_not_overlap() {
        for k in 1..=4 {
            let segs = balanced_segments(&app(), k);
            assert_eq!(segs.len(), k);
            let mut covered = 0;
            for (i, s) in segs.iter().enumerate() {
                assert_eq!(s.start, covered, "segment {i} contiguous");
                covered = s.end;
            }
            assert_eq!(covered, 4, "all blocks covered");
        }
    }

    #[test]
    fn single_asic_equals_base_algorithm() {
        let bsbs = app();
        let lib = HwLibrary::standard();
        let eca = EcaModel::standard();
        let plan = AsicPlan::new(vec![Area::new(10_000)]);
        let multi = allocate_multi_asic(&bsbs, &lib, &eca, &plan, &AllocConfig::default()).unwrap();
        let restr = Restrictions::from_asap(&bsbs, &lib).unwrap();
        let single = allocate(
            &bsbs,
            &lib,
            &eca,
            Area::new(10_000),
            &restr,
            &AllocConfig::default(),
        )
        .unwrap();
        assert_eq!(multi.outcomes.len(), 1);
        assert_eq!(multi.outcomes[0].allocation, single.allocation);
    }

    #[test]
    fn two_asics_split_the_blocks() {
        let bsbs = app();
        let lib = HwLibrary::standard();
        let plan = AsicPlan::new(vec![Area::new(6_000), Area::new(6_000)]);
        let out = allocate_multi_asic(
            &bsbs,
            &lib,
            &EcaModel::standard(),
            &plan,
            &AllocConfig::default(),
        )
        .unwrap();
        assert_eq!(out.segments.len(), 2);
        assert!(out.total_datapath_area(&lib) > Area::ZERO);
        // Every hardware block maps back into the original numbering.
        for (asic, id) in out.hw_bsbs() {
            assert_eq!(out.asic_of(id), Some(asic));
            assert!(id.index() < bsbs.len());
        }
    }

    #[test]
    fn more_asics_than_blocks_leaves_empty_segments() {
        let bsbs = BsbArray::from_bsbs("s", vec![bsb(0, OpKind::Add, 2, 5)]);
        let plan = AsicPlan::new(vec![Area::new(1_000); 3]);
        let out = allocate_multi_asic(
            &bsbs,
            &HwLibrary::standard(),
            &EcaModel::standard(),
            &plan,
            &AllocConfig::default(),
        )
        .unwrap();
        assert_eq!(out.segments.len(), 3);
        let non_empty: usize = out.segments.iter().filter(|s| !s.is_empty()).count();
        assert_eq!(non_empty, 1);
    }

    #[test]
    #[should_panic(expected = "at least one ASIC")]
    fn empty_plan_panics() {
        AsicPlan::new(vec![]);
    }

    #[test]
    fn asic_of_unassigned_block() {
        let bsbs = app();
        let out = allocate_multi_asic(
            &bsbs,
            &HwLibrary::standard(),
            &EcaModel::standard(),
            &AsicPlan::new(vec![Area::new(1_000), Area::new(1_000)]),
            &AllocConfig::default(),
        )
        .unwrap();
        assert_eq!(out.asic_of(BsbId(99)), None);
    }
}
