//! Functional Unit Request Overlap — Definition 2.
//!
//! `FURO(o, Bk)` estimates, for operation type `o` in block `Bk`, the
//! profile-weighted probability that two operations of that type compete
//! for the same data-path unit:
//!
//! ```text
//! FURO(o, Bk) = p_k · Σ_{i≠j}  Ovl(i,j) / (M(i)·M(j))
//! ```
//!
//! summed over ordered pairs of type-`o` operations where neither is a
//! transitive successor of the other (successors can never share a
//! control step). `M` is the ASAP–ALAP mobility and `Ovl` the overlap of
//! the two start windows ([`lycos_sched::Frames`]).
//!
//! The sum runs over *ordered* pairs exactly as the definition is
//! written, so every unordered pair contributes twice — a constant factor
//! that leaves the priority order unchanged.
//!
//! Computing the table costs `O(L·k²)` for `L` blocks of at most `k`
//! operations (§4.4) and is done once; the dynamic urgency `U(o,Bk)`
//! (Definition 3) only rescales these values as the allocation grows.

use crate::AllocError;
use lycos_hwlib::HwLibrary;
use lycos_ir::{Bsb, BsbArray, OpKind};
use lycos_sched::Frames;
use std::collections::BTreeMap;

/// FURO values for every `(block, operation type)` of an application,
/// plus the per-block ASAP lengths that double as controller state
/// estimates.
///
/// # Examples
///
/// ```
/// use lycos_core::FuroTable;
/// use lycos_hwlib::HwLibrary;
/// use lycos_ir::{extract_bsbs, Cdfg, CdfgNode, DfgBuilder, OpKind, TripCount};
///
/// // Two independent multiplies compete; a lone add does not.
/// let mut b = DfgBuilder::new();
/// let m1 = b.binary(OpKind::Mul, "a".into(), "b".into());
/// b.assign("x", m1);
/// let m2 = b.binary(OpKind::Mul, "c".into(), "d".into());
/// b.assign("y", m2);
/// let s = b.binary(OpKind::Add, "x".into(), "y".into());
/// b.assign("z", s);
/// let cdfg = Cdfg::new("app", CdfgNode::block("b0", b.finish()));
/// let bsbs = extract_bsbs(&cdfg, None)?;
///
/// let table = FuroTable::compute(&bsbs, &HwLibrary::standard())?;
/// assert!(table.furo(0, OpKind::Mul) > 0.0);
/// assert_eq!(table.furo(0, OpKind::Add), 0.0, "single add cannot compete");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct FuroTable {
    per_bsb: Vec<BTreeMap<OpKind, f64>>,
    asap_lengths: Vec<u64>,
}

impl FuroTable {
    /// Computes the table for every BSB of `bsbs`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Sched`] if a block's DFG is cyclic or an
    /// operation has no default unit in `lib`.
    pub fn compute(bsbs: &BsbArray, lib: &HwLibrary) -> Result<FuroTable, AllocError> {
        let mut per_bsb = Vec::with_capacity(bsbs.len());
        let mut asap_lengths = Vec::with_capacity(bsbs.len());
        for bsb in bsbs {
            let (map, len) = furo_of_bsb(bsb, lib)?;
            per_bsb.push(map);
            asap_lengths.push(len);
        }
        Ok(FuroTable {
            per_bsb,
            asap_lengths,
        })
    }

    /// `FURO(o, B_k)` for block index `k` and type `o` (0 if the block
    /// has no competing pair of that type).
    ///
    /// # Panics
    ///
    /// Panics if `bsb` is out of range.
    pub fn furo(&self, bsb: usize, op: OpKind) -> f64 {
        self.per_bsb[bsb].get(&op).copied().unwrap_or(0.0)
    }

    /// The operation types with non-zero FURO in block `k`.
    ///
    /// # Panics
    ///
    /// Panics if `bsb` is out of range.
    pub fn kinds(&self, bsb: usize) -> impl Iterator<Item = (OpKind, f64)> + '_ {
        self.per_bsb[bsb].iter().map(|(&k, &v)| (k, v))
    }

    /// ASAP schedule length of block `k` — the paper's optimistic
    /// controller state count `N` (§4.2).
    ///
    /// # Panics
    ///
    /// Panics if `bsb` is out of range.
    pub fn asap_length(&self, bsb: usize) -> u64 {
        self.asap_lengths[bsb]
    }

    /// Number of blocks covered.
    pub fn len(&self) -> usize {
        self.per_bsb.len()
    }

    /// Whether the table covers no blocks.
    pub fn is_empty(&self) -> bool {
        self.per_bsb.is_empty()
    }
}

/// FURO values and ASAP length of a single block.
fn furo_of_bsb(bsb: &Bsb, lib: &HwLibrary) -> Result<(BTreeMap<OpKind, f64>, u64), AllocError> {
    let dfg = &bsb.dfg;
    let frames = Frames::compute(dfg, lib)?;
    let succ = dfg
        .transitive_successors()
        .map_err(lycos_sched::SchedError::from)?;
    let p_k = bsb.profile as f64;

    // Group operation indices by type.
    let mut by_kind: BTreeMap<OpKind, Vec<usize>> = BTreeMap::new();
    for id in dfg.op_ids() {
        by_kind.entry(dfg.op(id).kind).or_default().push(id.index());
    }

    let mut out = BTreeMap::new();
    for (kind, ops) in by_kind {
        if ops.len() < 2 {
            continue;
        }
        let mut sum = 0.0f64;
        for (a, &i) in ops.iter().enumerate() {
            for &j in &ops[a + 1..] {
                // Unordered pair (i, j); skip dependent pairs.
                if succ[i].contains(j) || succ[j].contains(i) {
                    continue;
                }
                let fi = frames.as_slice()[i];
                let fj = frames.as_slice()[j];
                let ovl = fi.overlap(fj) as f64;
                if ovl == 0.0 {
                    continue;
                }
                let term = ovl / (fi.mobility() as f64 * fj.mobility() as f64);
                // Definition 2 sums ordered pairs: count (i,j) and (j,i).
                sum += 2.0 * term;
            }
        }
        if sum > 0.0 {
            out.insert(kind, p_k * sum);
        }
    }
    Ok((out, frames.asap_length()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lycos_ir::{BsbArray, BsbId, BsbOrigin, Dfg, DfgBuilder};
    use std::collections::BTreeSet;

    fn bsb_from_dfg(dfg: Dfg, profile: u64) -> BsbArray {
        BsbArray::from_bsbs(
            "t",
            vec![Bsb {
                id: BsbId(0),
                name: "b0".into(),
                dfg,
                reads: BTreeSet::new(),
                writes: BTreeSet::new(),
                profile,
                origin: BsbOrigin::Body,
            }],
        )
    }

    fn lib() -> HwLibrary {
        HwLibrary::standard()
    }

    #[test]
    fn two_parallel_same_type_ops_with_unit_mobility() {
        // Two independent adds, nothing else: both are critical (M=1),
        // overlap 1 → each ordered pair contributes 1/(1·1); two ordered
        // pairs → FURO = 2.
        let mut g = Dfg::new();
        g.add_op(OpKind::Add);
        g.add_op(OpKind::Add);
        let t = FuroTable::compute(&bsb_from_dfg(g, 1), &lib()).unwrap();
        assert_eq!(t.furo(0, OpKind::Add), 2.0);
    }

    #[test]
    fn profile_scales_linearly() {
        let mk = |p| {
            let mut g = Dfg::new();
            g.add_op(OpKind::Add);
            g.add_op(OpKind::Add);
            FuroTable::compute(&bsb_from_dfg(g, p), &lib()).unwrap()
        };
        let f1 = mk(1).furo(0, OpKind::Add);
        let f10 = mk(10).furo(0, OpKind::Add);
        assert!((f10 - 10.0 * f1).abs() < 1e-12);
    }

    #[test]
    fn dependent_ops_do_not_compete() {
        // a → b chain of adds: FURO(add) = 0.
        let mut g = Dfg::new();
        let a = g.add_op(OpKind::Add);
        let b = g.add_op(OpKind::Add);
        g.add_edge(a, b).unwrap();
        let t = FuroTable::compute(&bsb_from_dfg(g, 5), &lib()).unwrap();
        assert_eq!(t.furo(0, OpKind::Add), 0.0);
    }

    #[test]
    fn transitively_dependent_ops_do_not_compete() {
        // add → mul → add: the two adds are transitively dependent.
        let mut g = Dfg::new();
        let a = g.add_op(OpKind::Add);
        let m = g.add_op(OpKind::Mul);
        let b = g.add_op(OpKind::Add);
        g.add_edge(a, m).unwrap();
        g.add_edge(m, b).unwrap();
        let t = FuroTable::compute(&bsb_from_dfg(g, 1), &lib()).unwrap();
        assert_eq!(t.furo(0, OpKind::Add), 0.0);
    }

    #[test]
    fn single_op_of_type_has_zero_furo() {
        let mut g = Dfg::new();
        g.add_op(OpKind::Mul);
        g.add_op(OpKind::Add);
        let t = FuroTable::compute(&bsb_from_dfg(g, 3), &lib()).unwrap();
        assert_eq!(t.furo(0, OpKind::Mul), 0.0);
        assert_eq!(t.furo(0, OpKind::Add), 0.0);
    }

    #[test]
    fn mobility_dampens_competition() {
        // Block A: two adds, both critical (M=1 each, overlap 1).
        // Block B: two adds with slack (longer parallel mul-chain), so
        // mobility > 1 → smaller FURO.
        let mut a = Dfg::new();
        a.add_op(OpKind::Add);
        a.add_op(OpKind::Add);

        let mut b = Dfg::new();
        b.add_op(OpKind::Add);
        b.add_op(OpKind::Add);
        // mul chain lengthens the schedule, giving the adds mobility.
        let m1 = b.add_op(OpKind::Mul);
        let m2 = b.add_op(OpKind::Mul);
        b.add_edge(m1, m2).unwrap();

        let lib = lib();
        let ta = FuroTable::compute(&bsb_from_dfg(a, 1), &lib).unwrap();
        let tb = FuroTable::compute(&bsb_from_dfg(b, 1), &lib).unwrap();
        assert!(
            ta.furo(0, OpKind::Add) > tb.furo(0, OpKind::Add),
            "critical adds compete harder than mobile adds"
        );
        assert!(tb.furo(0, OpKind::Add) > 0.0);
    }

    #[test]
    fn many_parallel_consts_have_huge_furo() {
        // The `man` phenomenon: lots of parallel constant loads.
        let mut b = DfgBuilder::with_unshared_constants();
        for i in 0..8 {
            let c = b.load_const(format!("{i}"));
            let m = b.binary_ops(OpKind::Mul, Some(c), None);
            b.assign(format!("t{i}"), m);
        }
        let code = b.finish();
        let t = FuroTable::compute(&bsb_from_dfg(code.dfg, 100), &lib()).unwrap();
        let furo_const = t.furo(0, OpKind::Const);
        assert!(
            furo_const > 100.0,
            "8 overlapping consts × profile 100: {furo_const}"
        );
    }

    #[test]
    fn asap_length_recorded_per_bsb() {
        let mut g = Dfg::new();
        let m = g.add_op(OpKind::Mul);
        let a = g.add_op(OpKind::Add);
        g.add_edge(m, a).unwrap();
        let t = FuroTable::compute(&bsb_from_dfg(g, 1), &lib()).unwrap();
        assert_eq!(t.asap_length(0), 3);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn kinds_lists_only_nonzero() {
        let mut g = Dfg::new();
        g.add_op(OpKind::Add);
        g.add_op(OpKind::Add);
        g.add_op(OpKind::Mul);
        let t = FuroTable::compute(&bsb_from_dfg(g, 1), &lib()).unwrap();
        let kinds: Vec<OpKind> = t.kinds(0).map(|(k, _)| k).collect();
        assert_eq!(kinds, vec![OpKind::Add]);
    }

    #[test]
    fn empty_app_is_empty_table() {
        let t = FuroTable::compute(&BsbArray::from_bsbs("e", vec![]), &lib()).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
