//! Resource maps — Definition 1 of the paper.
//!
//! An `RMap` maps resources (functional-unit kinds) to instance counts.
//! Two operators are defined:
//!
//! * `∪` ([`RMap::union`]) — pointwise **sum**. The paper's Example 1:
//!   `{Adder→2, Mult→1} ∪ {Sub→1, Mult→2} = {Adder→2, Mult→3, Sub→1}`.
//! * `\` ([`RMap::difference`]) — pointwise saturating subtraction,
//!   dropping zero entries: `{Adder→2, Mult→1} \ {Sub→1, Mult→2} =
//!   {Adder→2}`.
//!
//! Zero counts are never stored, so two maps are equal iff they describe
//! the same multiset of units.

use lycos_hwlib::{Area, FuId, HwLibrary};
use lycos_ir::OpKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A mapping from functional-unit kinds to instance counts — both the
/// data-path allocation under construction and the required-resource sets
/// handled by the allocation algorithm.
///
/// # Examples
///
/// Example 1 of the paper (with ids standing in for adder/mult/sub):
///
/// ```
/// use lycos_core::RMap;
/// use lycos_hwlib::FuId;
///
/// let (adder, mult, sub) = (FuId(0), FuId(1), FuId(2));
/// let a1: RMap = [(adder, 2), (mult, 1)].into_iter().collect();
/// let a2: RMap = [(sub, 1), (mult, 2)].into_iter().collect();
///
/// let union = a1.union(&a2);
/// assert_eq!(union.count(adder), 2);
/// assert_eq!(union.count(mult), 3);
/// assert_eq!(union.count(sub), 1);
///
/// assert_eq!(a1.difference(&a2), [(adder, 2)].into_iter().collect());
/// assert_eq!(
///     a2.difference(&a1),
///     [(sub, 1), (mult, 1)].into_iter().collect()
/// );
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct RMap {
    counts: BTreeMap<FuId, u32>,
}

impl RMap {
    /// The empty map (`{}` in the paper).
    pub fn new() -> Self {
        RMap::default()
    }

    /// Number of instances of `fu` (0 if absent).
    pub fn count(&self, fu: FuId) -> u32 {
        self.counts.get(&fu).copied().unwrap_or(0)
    }

    /// Sets the instance count of `fu`; a zero count removes the entry.
    pub fn set(&mut self, fu: FuId, count: u32) {
        if count == 0 {
            self.counts.remove(&fu);
        } else {
            self.counts.insert(fu, count);
        }
    }

    /// Adds one instance of `fu` (the paper's `Allocation(R) + 1` update).
    pub fn increment(&mut self, fu: FuId) {
        *self.counts.entry(fu).or_insert(0) += 1;
    }

    /// Removes one instance of `fu`, if present; returns whether a unit
    /// was removed (used by design iteration, §5).
    pub fn decrement(&mut self, fu: FuId) -> bool {
        match self.counts.get_mut(&fu) {
            Some(c) if *c > 1 => {
                *c -= 1;
                true
            }
            Some(_) => {
                self.counts.remove(&fu);
                true
            }
            None => false,
        }
    }

    /// `self ∪ other`: pointwise sum (Definition 1 / Example 1).
    #[must_use]
    pub fn union(&self, other: &RMap) -> RMap {
        let mut out = self.clone();
        for (&fu, &c) in &other.counts {
            *out.counts.entry(fu).or_insert(0) += c;
        }
        out
    }

    /// `self \ other`: pointwise saturating subtraction, dropping zeros.
    #[must_use]
    pub fn difference(&self, other: &RMap) -> RMap {
        let mut out = RMap::new();
        for (&fu, &c) in &self.counts {
            let rest = c.saturating_sub(other.count(fu));
            if rest > 0 {
                out.counts.insert(fu, rest);
            }
        }
        out
    }

    /// Whether the map holds no units.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Number of distinct unit kinds present.
    pub fn kinds(&self) -> usize {
        self.counts.len()
    }

    /// Total number of unit instances.
    pub fn total_units(&self) -> u64 {
        self.counts.values().map(|&c| c as u64).sum()
    }

    /// Iterates over `(kind, count)` entries in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FuId, u32)> + '_ {
        self.counts.iter().map(|(&fu, &c)| (fu, c))
    }

    /// Whether `self` has at least the units of `other` (pointwise ≥).
    pub fn covers(&self, other: &RMap) -> bool {
        other.counts.iter().all(|(&fu, &c)| self.count(fu) >= c)
    }

    /// Projects the map onto `kinds`, returning the instance count of
    /// each kind in order (0 for absent kinds).
    ///
    /// A BSB's list schedule depends only on the counts of the unit
    /// kinds its operations actually use, so this projection is the
    /// memoisation key of the allocation-search engine: two
    /// allocations with equal projections yield identical per-BSB
    /// metrics.
    pub fn project(&self, kinds: &[FuId]) -> Vec<u32> {
        let mut out = Vec::with_capacity(kinds.len());
        self.project_into(kinds, &mut out);
        out
    }

    /// [`RMap::project`] into a caller-owned buffer, clearing it first.
    ///
    /// The allocation-search engine probes its memo once per block per
    /// candidate; projecting into a reused scratch buffer lets it probe
    /// by slice and allocate a key only when an entry is actually
    /// inserted.
    pub fn project_into(&self, kinds: &[FuId], out: &mut Vec<u32>) {
        out.clear();
        out.extend(kinds.iter().map(|&fu| self.count(fu)));
    }

    /// Total data-path area of the mapped units.
    ///
    /// # Panics
    ///
    /// Panics if a unit id is not from `lib`.
    pub fn area(&self, lib: &HwLibrary) -> Area {
        self.counts
            .iter()
            .map(|(&fu, &c)| lib.area_of(fu) * c as u64)
            .sum()
    }

    /// Number of allocated units able to execute operations of type `op`
    /// (`Alloc(o)` in Definition 3). Counts *all* unit kinds whose spec
    /// executes `op`, so alternative units from the module-selection
    /// extension are included.
    pub fn units_for_op(&self, op: OpKind, lib: &HwLibrary) -> u32 {
        self.counts
            .iter()
            .filter(|&(&fu, _)| lib.fu(fu).executes(op))
            .map(|(_, &c)| c)
            .sum()
    }

    /// Renders the map with unit names from `lib` (for reports).
    pub fn display_with(&self, lib: &HwLibrary) -> String {
        if self.counts.is_empty() {
            return "{}".to_owned();
        }
        let parts: Vec<String> = self
            .counts
            .iter()
            .map(|(&fu, &c)| format!("{}×{}", c, lib.fu(fu).name))
            .collect();
        format!("{{{}}}", parts.join(", "))
    }
}

/// Index of `fu` within an id-sorted kind list, `None` when absent.
///
/// The allocation-search engine keys everything on the id-sorted
/// dimension list of the allocation space (the order of
/// [`Restrictions::iter`](crate::Restrictions::iter) and
/// [`RMap::iter`]); per-block kind sets must be translated into
/// positions within that list — the memoisation index of the search
/// engine's incremental-metrics path and the level index of its
/// bound tables. Binary search, so `kinds` must be sorted by id (as
/// every kind list this crate produces is).
pub fn kind_position(kinds: &[FuId], fu: FuId) -> Option<usize> {
    kinds.binary_search(&fu).ok()
}

/// [`kind_position`] over a whole kind set: the position of each of
/// `kinds` within the id-sorted dimension list `dims`, in order.
/// `None` if any kind is absent from `dims` — for the search engine
/// that means the kind can never be allocated, so the block owning it
/// can never move to hardware.
pub fn kind_positions(dims: &[FuId], kinds: &[FuId]) -> Option<Vec<usize>> {
    kinds.iter().map(|&fu| kind_position(dims, fu)).collect()
}

impl FromIterator<(FuId, u32)> for RMap {
    fn from_iter<I: IntoIterator<Item = (FuId, u32)>>(iter: I) -> Self {
        let mut m = RMap::new();
        for (fu, c) in iter {
            if c > 0 {
                *m.counts.entry(fu).or_insert(0) += c;
            }
        }
        m
    }
}

impl Extend<(FuId, u32)> for RMap {
    fn extend<I: IntoIterator<Item = (FuId, u32)>>(&mut self, iter: I) {
        for (fu, c) in iter {
            if c > 0 {
                *self.counts.entry(fu).or_insert(0) += c;
            }
        }
    }
}

impl fmt::Display for RMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counts.is_empty() {
            return f.write_str("{}");
        }
        let parts: Vec<String> = self
            .counts
            .iter()
            .map(|(&fu, &c)| format!("{fu}→{c}"))
            .collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: FuId = FuId(0);
    const M: FuId = FuId(1);
    const S: FuId = FuId(2);

    fn a1() -> RMap {
        [(A, 2), (M, 1)].into_iter().collect()
    }

    fn a2() -> RMap {
        [(S, 1), (M, 2)].into_iter().collect()
    }

    #[test]
    fn example1_union() {
        let u = a1().union(&a2());
        assert_eq!(u.count(A), 2);
        assert_eq!(u.count(M), 3);
        assert_eq!(u.count(S), 1);
        assert_eq!(u.total_units(), 6);
    }

    #[test]
    fn example1_differences() {
        assert_eq!(a1().difference(&a2()), [(A, 2)].into_iter().collect());
        assert_eq!(
            a2().difference(&a1()),
            [(S, 1), (M, 1)].into_iter().collect()
        );
    }

    #[test]
    fn example1_indexing_update() {
        // Allocation1(Adder) + 1 = {Adder→3, Multiplier→1}
        let mut m = a1();
        m.increment(A);
        assert_eq!(m, [(A, 3), (M, 1)].into_iter().collect());
    }

    #[test]
    fn zero_counts_are_never_stored() {
        let mut m = RMap::new();
        m.set(A, 0);
        assert!(m.is_empty());
        m.set(A, 2);
        m.set(A, 0);
        assert!(m.is_empty());
        let from: RMap = [(A, 0), (M, 1)].into_iter().collect();
        assert_eq!(from.kinds(), 1);
    }

    #[test]
    fn union_with_empty_is_identity() {
        assert_eq!(a1().union(&RMap::new()), a1());
        assert_eq!(RMap::new().union(&a1()), a1());
    }

    #[test]
    fn difference_with_self_is_empty() {
        assert!(a1().difference(&a1()).is_empty());
    }

    #[test]
    fn difference_saturates() {
        let small: RMap = [(A, 1)].into_iter().collect();
        let big: RMap = [(A, 5)].into_iter().collect();
        assert!(small.difference(&big).is_empty());
    }

    #[test]
    fn union_is_commutative_and_associative() {
        let c: RMap = [(A, 1), (S, 4)].into_iter().collect();
        assert_eq!(a1().union(&a2()), a2().union(&a1()));
        assert_eq!(a1().union(&a2()).union(&c), a1().union(&a2().union(&c)));
    }

    #[test]
    fn covers_is_pointwise_ge() {
        assert!(a1().union(&a2()).covers(&a1()));
        assert!(!a1().covers(&a2()));
        assert!(a1().covers(&RMap::new()));
    }

    #[test]
    fn decrement_removes_and_reports() {
        let mut m: RMap = [(A, 2)].into_iter().collect();
        assert!(m.decrement(A));
        assert_eq!(m.count(A), 1);
        assert!(m.decrement(A));
        assert_eq!(m.count(A), 0);
        assert!(!m.decrement(A));
    }

    #[test]
    fn project_reads_counts_in_kind_order() {
        let m = a1(); // {A→2, M→1}
        assert_eq!(m.project(&[A, M, S]), vec![2, 1, 0]);
        assert_eq!(m.project(&[S, A]), vec![0, 2]);
        assert_eq!(m.project(&[]), Vec::<u32>::new());
        assert_eq!(RMap::new().project(&[A, M]), vec![0, 0]);
    }

    #[test]
    fn equal_projections_for_differing_maps() {
        // Two allocations differing only outside the projected kinds
        // project identically — the cache-key property.
        let a: RMap = [(A, 2), (S, 5)].into_iter().collect();
        let b: RMap = [(A, 2), (M, 9)].into_iter().collect();
        assert_eq!(a.project(&[A]), b.project(&[A]));
        assert_ne!(a.project(&[A, S]), b.project(&[A, S]));
    }

    #[test]
    fn area_uses_library() {
        let lib = HwLibrary::standard();
        let adder = lib.by_name("adder").unwrap();
        let mult = lib.by_name("multiplier").unwrap();
        let m: RMap = [(adder, 2), (mult, 1)].into_iter().collect();
        assert_eq!(m.area(&lib), Area::new(2 * 200 + 2000));
        assert_eq!(RMap::new().area(&lib), Area::ZERO);
    }

    #[test]
    fn units_for_op_counts_all_capable_kinds() {
        let lib = HwLibrary::extended();
        let adder = lib.by_name("adder").unwrap();
        let cla = lib.by_name("cla-adder").unwrap();
        let m: RMap = [(adder, 1), (cla, 2)].into_iter().collect();
        assert_eq!(m.units_for_op(OpKind::Add, &lib), 3);
        assert_eq!(m.units_for_op(OpKind::Mul, &lib), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", RMap::new()), "{}");
        let m: RMap = [(A, 2)].into_iter().collect();
        assert_eq!(format!("{m}"), "{fu0→2}");
        let lib = HwLibrary::standard();
        let adder = lib.by_name("adder").unwrap();
        let named: RMap = [(adder, 2)].into_iter().collect();
        assert_eq!(named.display_with(&lib), "{2×adder}");
        assert_eq!(RMap::new().display_with(&lib), "{}");
    }

    #[test]
    fn kind_positions_follow_the_sorted_dimension_order() {
        let dims = [A, M, S];
        assert_eq!(kind_position(&dims, A), Some(0));
        assert_eq!(kind_position(&dims, S), Some(2));
        assert_eq!(kind_position(&dims, FuId(9)), None);
        assert_eq!(kind_positions(&dims, &[A, S]), Some(vec![0, 2]));
        assert_eq!(kind_positions(&dims, &[]), Some(Vec::new()));
        // One absent kind poisons the whole set — the block can never
        // become hardware-feasible.
        assert_eq!(kind_positions(&dims, &[A, FuId(9)]), None);
        assert_eq!(kind_positions(&[], &[A]), None);
    }

    #[test]
    fn extend_accumulates() {
        let mut m = a1();
        m.extend([(A, 1), (S, 2)]);
        assert_eq!(m.count(A), 3);
        assert_eq!(m.count(S), 2);
    }
}
