//! Module selection — the paper's first future-work extension (§6).
//!
//! The base algorithm assumes one fixed unit kind per operation type.
//! When the library offers alternatives (a ripple-carry vs a
//! carry-lookahead adder, a serial vs an array multiplier),
//! [`select_modules`] decides which alternative becomes the default
//! before allocation runs. Selection is per operation type, driven by a
//! [`SelectionStrategy`].

use crate::AllocError;
use lycos_hwlib::HwLibrary;
use lycos_ir::BsbArray;
use serde::{Deserialize, Serialize};

/// How to choose among alternative units for one operation type.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// Minimise latency; break ties by area. Maximises per-block
    /// speed-up at the cost of data-path area.
    Fastest,
    /// Minimise area; break ties by latency. Leaves the most room for
    /// controllers (the "many small speed-ups" end of Figure 3).
    Smallest,
    /// Minimise the area–delay product — a balanced middle ground.
    AreaDelayProduct,
}

/// Returns a copy of `lib` whose default unit for every operation type
/// appearing in `bsbs` is chosen by `strategy` from the library's
/// candidates.
///
/// Operation types not used by the application keep their defaults.
///
/// # Errors
///
/// [`AllocError::Hw`] if some used operation type has no candidate unit
/// at all.
///
/// # Examples
///
/// ```
/// use lycos_core::{select_modules, SelectionStrategy};
/// use lycos_hwlib::HwLibrary;
/// use lycos_ir::{extract_bsbs, Cdfg, CdfgNode, DfgBuilder, OpKind};
///
/// let mut b = DfgBuilder::new();
/// let s = b.binary(OpKind::Add, "x".into(), "y".into());
/// b.assign("s", s);
/// let cdfg = Cdfg::new("sum", CdfgNode::block("b0", b.finish()));
/// let bsbs = extract_bsbs(&cdfg, None)?;
///
/// let lib = select_modules(&HwLibrary::extended(), &bsbs,
///                          SelectionStrategy::Smallest)?;
/// let adder = lib.fu_for(OpKind::Add).unwrap();
/// assert_eq!(lib.fu(adder).name, "ripple-adder", "cheapest adder wins");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn select_modules(
    lib: &HwLibrary,
    bsbs: &BsbArray,
    strategy: SelectionStrategy,
) -> Result<HwLibrary, AllocError> {
    let mut out = lib.clone();
    let mut used = std::collections::BTreeSet::new();
    for bsb in bsbs {
        used.extend(bsb.dfg.kinds_present());
    }
    for op in used {
        let candidates = lib.candidates(op);
        let best = candidates
            .into_iter()
            .min_by_key(|&fu| {
                let spec = lib.fu(fu);
                let area = spec.area.gates();
                let lat = spec.latency as u64;
                match strategy {
                    SelectionStrategy::Fastest => (lat, area, fu.0),
                    SelectionStrategy::Smallest => (area, lat, fu.0),
                    SelectionStrategy::AreaDelayProduct => (area * lat, lat, fu.0),
                }
            })
            .ok_or(lycos_hwlib::HwError::NoUnitFor { op })?;
        out.set_default(op, best)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lycos_ir::{Bsb, BsbId, BsbOrigin, Dfg, OpKind};
    use std::collections::BTreeSet;

    fn app_with(kinds: &[OpKind]) -> BsbArray {
        let mut dfg = Dfg::new();
        for &k in kinds {
            dfg.add_op(k);
        }
        BsbArray::from_bsbs(
            "t",
            vec![Bsb {
                id: BsbId(0),
                name: "b0".into(),
                dfg,
                reads: BTreeSet::new(),
                writes: BTreeSet::new(),
                profile: 1,
                origin: BsbOrigin::Body,
            }],
        )
    }

    #[test]
    fn smallest_picks_ripple_adder_and_serial_units() {
        let lib = select_modules(
            &HwLibrary::extended(),
            &app_with(&[OpKind::Add, OpKind::Mul, OpKind::Div]),
            SelectionStrategy::Smallest,
        )
        .unwrap();
        assert_eq!(
            lib.fu(lib.fu_for(OpKind::Add).unwrap()).name,
            "ripple-adder"
        );
        assert_eq!(
            lib.fu(lib.fu_for(OpKind::Mul).unwrap()).name,
            "serial-multiplier"
        );
        assert_eq!(
            lib.fu(lib.fu_for(OpKind::Div).unwrap()).name,
            "serial-divider"
        );
    }

    #[test]
    fn fastest_prefers_low_latency_then_area() {
        let lib = select_modules(
            &HwLibrary::extended(),
            &app_with(&[OpKind::Add, OpKind::Mul]),
            SelectionStrategy::Fastest,
        )
        .unwrap();
        // adder (200, 1cs) and cla-adder (350, 1cs) tie on latency;
        // area breaks the tie towards the standard adder.
        assert_eq!(lib.fu(lib.fu_for(OpKind::Add).unwrap()).name, "adder");
        assert_eq!(lib.fu(lib.fu_for(OpKind::Mul).unwrap()).name, "multiplier");
    }

    #[test]
    fn area_delay_product_balances() {
        let lib = select_modules(
            &HwLibrary::extended(),
            &app_with(&[OpKind::Add]),
            SelectionStrategy::AreaDelayProduct,
        )
        .unwrap();
        // adder: 200·1 = 200; ripple: 120·2 = 240; cla: 350·1 = 350.
        assert_eq!(lib.fu(lib.fu_for(OpKind::Add).unwrap()).name, "adder");
    }

    #[test]
    fn unused_kinds_keep_their_defaults() {
        let before = HwLibrary::extended();
        let after = select_modules(
            &before,
            &app_with(&[OpKind::Add]),
            SelectionStrategy::Smallest,
        )
        .unwrap();
        assert_eq!(
            after.fu_for(OpKind::Mul).unwrap(),
            before.fu_for(OpKind::Mul).unwrap(),
            "mul untouched"
        );
    }

    #[test]
    fn standard_library_is_a_fixed_point() {
        // With one candidate per type, every strategy returns the same
        // defaults.
        let std_lib = HwLibrary::standard();
        for strat in [
            SelectionStrategy::Fastest,
            SelectionStrategy::Smallest,
            SelectionStrategy::AreaDelayProduct,
        ] {
            let sel =
                select_modules(&std_lib, &app_with(&[OpKind::Add, OpKind::Div]), strat).unwrap();
            assert_eq!(
                sel.fu_for(OpKind::Add).unwrap(),
                std_lib.fu_for(OpKind::Add).unwrap()
            );
        }
    }

    #[test]
    fn missing_candidates_error() {
        let empty = HwLibrary::new();
        let err = select_modules(
            &empty,
            &app_with(&[OpKind::Add]),
            SelectionStrategy::Fastest,
        );
        assert!(err.is_err());
    }
}
