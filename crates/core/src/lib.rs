//! The LYCOS hardware resource allocation algorithm (DATE 1998).
//!
//! This crate is the paper's primary contribution: given an application
//! as an array of Basic Scheduling Blocks (from [`lycos_ir`]), a hardware
//! library and an area budget, [`allocate`] pre-allocates the functional
//! units of the ASIC data path *before* hardware/software partitioning,
//! so that the later partitioner (PACE, in `lycos-pace`) only pays
//! controller area for each block it moves to hardware.
//!
//! The pieces map one-to-one onto the paper:
//!
//! * [`RMap`] — resource maps with `∪` and `\` (Definition 1);
//! * [`FuroTable`] — Functional Unit Request Overlap (Definition 2);
//! * [`urgency`] / [`prioritize`] — dynamic urgencies `U(o,Bk)` and the
//!   priority order (Definitions 3–4, Example 2);
//! * [`Restrictions`] — ASAP-parallelism allocation caps (§4.3);
//! * [`allocate`] — Algorithm 1, with [`AllocConfig`] selecting the
//!   controller state estimate (§4.2/§5.1) and optional tracing;
//! * [`select_modules`] — the module-selection future-work extension
//!   (§6) choosing among alternative units for the same operation;
//! * [`allocate_multi_asic`] — the multi-ASIC future-work extension (§6).
//!
//! # Examples
//!
//! ```
//! use lycos_core::{allocate, AllocConfig, Restrictions};
//! use lycos_hwlib::{Area, EcaModel, HwLibrary};
//! use lycos_ir::{extract_bsbs, Cdfg, CdfgNode, DfgBuilder, OpKind, TripCount};
//!
//! // A hot loop with two independent multiplies.
//! let mut b = DfgBuilder::new();
//! let m1 = b.binary(OpKind::Mul, "a".into(), "b".into());
//! b.assign("x", m1);
//! let m2 = b.binary(OpKind::Mul, "c".into(), "d".into());
//! b.assign("y", m2);
//! let cdfg = Cdfg::new(
//!     "hot",
//!     CdfgNode::Loop {
//!         label: "l".into(),
//!         test: None,
//!         body: Box::new(CdfgNode::block("body", b.finish())),
//!         trip: TripCount::Fixed(1000),
//!     },
//! );
//! let bsbs = extract_bsbs(&cdfg, None)?;
//! let lib = HwLibrary::standard();
//! let restr = Restrictions::from_asap(&bsbs, &lib)?;
//! let out = allocate(&bsbs, &lib, &EcaModel::standard(), Area::new(8000),
//!                    &restr, &AllocConfig::default())?;
//! println!("allocated: {}", out.allocation.display_with(&lib));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod algorithm;
mod error;
mod furo;
mod multi_asic;
mod priority;
mod restrict;
mod rmap;
mod selection;

pub use algorithm::{
    allocate, most_urgent_resource, required_resources, AllocConfig, AllocOutcome, StateEstimate,
    TraceEvent,
};
pub use error::AllocError;
pub use furo::FuroTable;
pub use multi_asic::{allocate_multi_asic, AsicPlan, MultiAsicOutcome};
pub use priority::{max_urgency, prioritize, urgency};
pub use restrict::Restrictions;
pub use rmap::{kind_position, kind_positions, RMap};
pub use selection::{select_modules, SelectionStrategy};
