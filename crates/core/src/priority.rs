//! Dynamic urgency and BSB prioritisation (Definitions 3 and 4).
//!
//! Every block is annotated, per operation type, with an urgency
//! `U(o, Bk)`: the raw FURO while the block is still in software, and
//! FURO dampened by the number of already-allocated capable units once
//! the block sits in hardware:
//!
//! ```text
//! U(o, Bk) = FURO(o, Bk)                    if Bk in software
//! U(o, Bk) = FURO(o, Bk) / (Alloc(o) + 1)   if Bk in hardware
//! ```
//!
//! Blocks are ordered by their *maximum* urgency over all operation
//! types (Definition 4). As Example 2 shows, a block already in hardware
//! loses urgency as units are added, letting software blocks overtake it
//! — the mechanism that balances "few large speed-ups" against "many
//! small speed-ups" (Figure 3).

use crate::{FuroTable, RMap};
use lycos_hwlib::HwLibrary;
use lycos_ir::{Bsb, BsbArray, OpKind};

/// `U(o, B_k)` — Definition 3.
///
/// `in_hw` tells whether `B_k` currently sits in hardware;
/// `allocation` is the allocation built so far.
pub fn urgency(
    furo: &FuroTable,
    bsb_index: usize,
    op: OpKind,
    in_hw: bool,
    allocation: &RMap,
    lib: &HwLibrary,
) -> f64 {
    let f = furo.furo(bsb_index, op);
    if in_hw {
        f / (allocation.units_for_op(op, lib) as f64 + 1.0)
    } else {
        f
    }
}

/// The maximum urgency of a block over all operation types present in
/// it, together with the type attaining it (`None` for an empty block
/// or a block whose every type has zero urgency — nothing can compete).
pub fn max_urgency(
    furo: &FuroTable,
    bsb: &Bsb,
    bsb_index: usize,
    in_hw: bool,
    allocation: &RMap,
    lib: &HwLibrary,
) -> (f64, Option<OpKind>) {
    let mut best = 0.0f64;
    let mut best_kind = None;
    for kind in bsb.dfg.kinds_present() {
        let u = urgency(furo, bsb_index, kind, in_hw, allocation, lib);
        if u > best {
            best = u;
            best_kind = Some(kind);
        }
    }
    (best, best_kind)
}

/// Orders the block indices by decreasing maximum urgency
/// (Definition 4). Ties break deterministically: higher profile count
/// first, then lower index.
pub fn prioritize(
    bsbs: &BsbArray,
    furo: &FuroTable,
    in_hw: &[bool],
    allocation: &RMap,
    lib: &HwLibrary,
) -> Vec<usize> {
    let mut keyed: Vec<(usize, f64)> = (0..bsbs.len())
        .map(|k| {
            let (u, _) = max_urgency(furo, &bsbs[k], k, in_hw[k], allocation, lib);
            (k, u)
        })
        .collect();
    keyed.sort_by(|&(ka, ua), &(kb, ub)| {
        ub.partial_cmp(&ua)
            .expect("urgencies are finite")
            .then_with(|| bsbs[kb].profile.cmp(&bsbs[ka].profile))
            .then_with(|| ka.cmp(&kb))
    });
    keyed.into_iter().map(|(k, _)| k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lycos_ir::{BsbArray, BsbId, BsbOrigin, Dfg};
    use std::collections::BTreeSet;

    fn lib() -> HwLibrary {
        HwLibrary::standard()
    }

    /// An array of blocks, each with `n` independent ops of one kind and
    /// a profile count.
    fn array_of(blocks: &[(OpKind, usize, u64)]) -> BsbArray {
        BsbArray::from_bsbs(
            "t",
            blocks
                .iter()
                .enumerate()
                .map(|(i, &(kind, n, profile))| {
                    let mut dfg = Dfg::new();
                    for _ in 0..n {
                        dfg.add_op(kind);
                    }
                    Bsb {
                        id: BsbId(i as u32),
                        name: format!("b{i}"),
                        dfg,
                        reads: BTreeSet::new(),
                        writes: BTreeSet::new(),
                        profile,
                        origin: BsbOrigin::Body,
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn software_block_uses_raw_furo() {
        let bsbs = array_of(&[(OpKind::Add, 2, 3)]);
        let lib = lib();
        let furo = FuroTable::compute(&bsbs, &lib).unwrap();
        let u = urgency(&furo, 0, OpKind::Add, false, &RMap::new(), &lib);
        assert_eq!(u, furo.furo(0, OpKind::Add));
        assert_eq!(u, 6.0, "2 ordered pairs × profile 3");
    }

    #[test]
    fn hardware_block_is_dampened_by_allocation() {
        let bsbs = array_of(&[(OpKind::Add, 2, 3)]);
        let lib = lib();
        let furo = FuroTable::compute(&bsbs, &lib).unwrap();
        let adder = lib.fu_for(OpKind::Add).unwrap();

        let empty = RMap::new();
        let one: RMap = [(adder, 1)].into_iter().collect();
        let two: RMap = [(adder, 2)].into_iter().collect();

        let u0 = urgency(&furo, 0, OpKind::Add, true, &empty, &lib);
        let u1 = urgency(&furo, 0, OpKind::Add, true, &one, &lib);
        let u2 = urgency(&furo, 0, OpKind::Add, true, &two, &lib);
        assert_eq!(u0, 6.0, "no units yet: /(0+1)");
        assert_eq!(u1, 3.0, "/(1+1)");
        assert_eq!(u2, 2.0, "/(2+1)");
    }

    #[test]
    fn example2_software_block_overtakes() {
        // Two blocks with only one op type. B1 slightly more urgent.
        let bsbs = array_of(&[(OpKind::Add, 2, 4), (OpKind::Add, 2, 3)]);
        let lib = lib();
        let furo = FuroTable::compute(&bsbs, &lib).unwrap();
        let adder = lib.fu_for(OpKind::Add).unwrap();

        // Initially B1 ahead of B2.
        let order = prioritize(&bsbs, &furo, &[false, false], &RMap::new(), &lib);
        assert_eq!(order, vec![0, 1]);

        // B1 moves to hardware, one adder allocated: U(B1) = 8/2 = 4,
        // U(B2) = 6 → B2 overtakes.
        let one: RMap = [(adder, 1)].into_iter().collect();
        let order = prioritize(&bsbs, &furo, &[true, false], &one, &lib);
        assert_eq!(order, vec![1, 0], "software block gets priority");
    }

    #[test]
    fn max_urgency_picks_dominating_kind() {
        // Block with 2 parallel muls and 2 parallel adds, mul FURO wins
        // after mul is weighted the same; both present.
        let mut dfg = Dfg::new();
        dfg.add_op(OpKind::Mul);
        dfg.add_op(OpKind::Mul);
        dfg.add_op(OpKind::Add);
        dfg.add_op(OpKind::Add);
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![Bsb {
                id: BsbId(0),
                name: "b0".into(),
                dfg,
                reads: BTreeSet::new(),
                writes: BTreeSet::new(),
                profile: 1,
                origin: BsbOrigin::Body,
            }],
        );
        let lib = lib();
        let furo = FuroTable::compute(&bsbs, &lib).unwrap();
        let (u, kind) = max_urgency(&furo, &bsbs[0], 0, false, &RMap::new(), &lib);
        assert!(u > 0.0);
        // Both kinds compete; the mul pair has full-schedule mobility
        // overlap; whichever wins must be one of the two.
        assert!(matches!(kind, Some(OpKind::Mul) | Some(OpKind::Add)));
    }

    #[test]
    fn empty_block_has_no_urgent_kind() {
        let bsbs = array_of(&[(OpKind::Add, 0, 1)]);
        let lib = lib();
        let furo = FuroTable::compute(&bsbs, &lib).unwrap();
        let (u, kind) = max_urgency(&furo, &bsbs[0], 0, false, &RMap::new(), &lib);
        assert_eq!(u, 0.0);
        assert_eq!(kind, None);
    }

    #[test]
    fn serial_block_has_no_urgent_kind() {
        let mut dfg = Dfg::new();
        let a = dfg.add_op(OpKind::Add);
        let b = dfg.add_op(OpKind::Add);
        dfg.add_edge(a, b).unwrap();
        let bsbs = BsbArray::from_bsbs(
            "t",
            vec![Bsb {
                id: BsbId(0),
                name: "chain".into(),
                dfg,
                reads: BTreeSet::new(),
                writes: BTreeSet::new(),
                profile: 9,
                origin: BsbOrigin::Body,
            }],
        );
        let lib = lib();
        let furo = FuroTable::compute(&bsbs, &lib).unwrap();
        let (u, kind) = max_urgency(&furo, &bsbs[0], 0, false, &RMap::new(), &lib);
        assert_eq!((u, kind), (0.0, None), "no parallelism, no urgency");
    }

    #[test]
    fn ties_break_by_profile_then_index() {
        // Three blocks with zero urgency: order by profile desc, index asc.
        let bsbs = array_of(&[
            (OpKind::Add, 1, 5),
            (OpKind::Add, 1, 9),
            (OpKind::Add, 1, 5),
        ]);
        let lib = lib();
        let furo = FuroTable::compute(&bsbs, &lib).unwrap();
        let order = prioritize(&bsbs, &furo, &[false; 3], &RMap::new(), &lib);
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn profile_dominates_priority_between_blocks() {
        let bsbs = array_of(&[(OpKind::Add, 2, 1), (OpKind::Add, 2, 100)]);
        let lib = lib();
        let furo = FuroTable::compute(&bsbs, &lib).unwrap();
        let order = prioritize(&bsbs, &furo, &[false, false], &RMap::new(), &lib);
        assert_eq!(order[0], 1, "hot block first");
    }
}
