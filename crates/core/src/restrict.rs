//! Allocation restrictions (§4.3).
//!
//! The allocation algorithm is greedy; without a cap it could keep
//! allocating units of a kind whose operations never actually run in
//! parallel. The ASAP schedule bounds the useful instance count: a unit
//! kind can never have more instances busy than the maximum number of
//! simultaneously active operations it executes in any block's ASAP
//! schedule. User-supplied caps tighten (never loosen) the ASAP caps —
//! that is exactly the paper's manual design iteration (§5: "the number
//! of allocated constant generators was reduced … to one").

use crate::AllocError;
use lycos_hwlib::{FuId, HwLibrary};
use lycos_ir::BsbArray;
use lycos_sched::Frames;
use std::collections::BTreeMap;
use std::fmt;

/// Per-unit-kind allocation caps.
///
/// # Examples
///
/// ```
/// use lycos_core::Restrictions;
/// use lycos_hwlib::HwLibrary;
/// use lycos_ir::{extract_bsbs, Cdfg, CdfgNode, DfgBuilder, OpKind};
///
/// let mut b = DfgBuilder::new();
/// for i in 0..3 {
///     let t = b.binary(OpKind::Add, format!("a{i}").as_str().into(),
///                      format!("b{i}").as_str().into());
///     b.assign(format!("t{i}"), t);
/// }
/// let cdfg = Cdfg::new("app", CdfgNode::block("b0", b.finish()));
/// let bsbs = extract_bsbs(&cdfg, None)?;
/// let lib = HwLibrary::standard();
///
/// let r = Restrictions::from_asap(&bsbs, &lib)?;
/// let adder = lib.fu_for(OpKind::Add).unwrap();
/// assert_eq!(r.cap(adder), 3, "three parallel adds at most");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Restrictions {
    caps: BTreeMap<FuId, u32>,
}

impl Restrictions {
    /// No restrictions at all — every cap is zero, nothing can be
    /// allocated. Usually combined with [`Restrictions::from_asap`];
    /// exposed for tests and custom flows.
    pub fn new() -> Self {
        Restrictions::default()
    }

    /// Derives caps from the ASAP schedules of all blocks: for each unit
    /// kind, the maximum over blocks of the number of simultaneously
    /// active operations the kind executes.
    ///
    /// # Errors
    ///
    /// [`AllocError::Sched`] if a block's DFG cannot be scheduled.
    pub fn from_asap(bsbs: &BsbArray, lib: &HwLibrary) -> Result<Self, AllocError> {
        let mut caps: BTreeMap<FuId, u32> = BTreeMap::new();
        for bsb in bsbs {
            let frames = Frames::compute(&bsb.dfg, lib)?;
            let len = frames.asap_length() as usize;
            if len == 0 {
                continue;
            }
            // Per unit kind, an activity histogram over ASAP steps.
            let mut active: BTreeMap<FuId, Vec<u32>> = BTreeMap::new();
            for id in bsb.dfg.op_ids() {
                let kind = bsb.dfg.op(id).kind;
                let fu = lib
                    .fu_for(kind)
                    .map_err(|_| lycos_sched::SchedError::NoUnitFor { op: kind })?;
                let lat = lib.fu(fu).latency as u64;
                let start = frames.frame(id).asap;
                let hist = active.entry(fu).or_insert_with(|| vec![0; len]);
                for t in start..start + lat {
                    hist[(t - 1) as usize] += 1;
                }
            }
            for (fu, hist) in active {
                let peak = hist.into_iter().max().unwrap_or(0);
                let cap = caps.entry(fu).or_insert(0);
                *cap = (*cap).max(peak);
            }
        }
        Ok(Restrictions { caps })
    }

    /// The cap for `fu` (0 if the application never uses the kind).
    pub fn cap(&self, fu: FuId) -> u32 {
        self.caps.get(&fu).copied().unwrap_or(0)
    }

    /// Tightens the cap for `fu` to `min(current, cap)`, returning
    /// `self` for chaining. Raising a cap above the ASAP bound is never
    /// useful (§5.1: "It is never necessary to increase the number of
    /// allocated resources"), so this only lowers.
    pub fn tighten(&mut self, fu: FuId, cap: u32) -> &mut Self {
        let e = self.caps.entry(fu).or_insert(0);
        *e = (*e).min(cap);
        self
    }

    /// Iterates over `(kind, cap)` entries with non-zero caps.
    pub fn iter(&self) -> impl Iterator<Item = (FuId, u32)> + '_ {
        self.caps
            .iter()
            .filter(|&(_, &c)| c > 0)
            .map(|(&fu, &c)| (fu, c))
    }

    /// Sum of all caps — an upper bound on the total units the
    /// allocation algorithm can ever place (termination argument).
    pub fn total_cap(&self) -> u64 {
        self.caps.values().map(|&c| c as u64).sum()
    }

    /// Renders the caps with unit names from `lib`.
    pub fn display_with(&self, lib: &HwLibrary) -> String {
        let parts: Vec<String> = self
            .iter()
            .map(|(fu, c)| format!("{}≤{}", lib.fu(fu).name, c))
            .collect();
        format!("{{{}}}", parts.join(", "))
    }
}

impl fmt::Display for Restrictions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.iter().map(|(fu, c)| format!("{fu}≤{c}")).collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lycos_ir::{Bsb, BsbId, BsbOrigin, Dfg, OpKind};
    use std::collections::BTreeSet;

    fn arr(dfgs: Vec<Dfg>) -> BsbArray {
        BsbArray::from_bsbs(
            "t",
            dfgs.into_iter()
                .enumerate()
                .map(|(i, dfg)| Bsb {
                    id: BsbId(i as u32),
                    name: format!("b{i}"),
                    dfg,
                    reads: BTreeSet::new(),
                    writes: BTreeSet::new(),
                    profile: 1,
                    origin: BsbOrigin::Body,
                })
                .collect(),
        )
    }

    fn lib() -> HwLibrary {
        HwLibrary::standard()
    }

    #[test]
    fn chain_caps_at_one() {
        let mut g = Dfg::new();
        let a = g.add_op(OpKind::Add);
        let b = g.add_op(OpKind::Add);
        g.add_edge(a, b).unwrap();
        let r = Restrictions::from_asap(&arr(vec![g]), &lib()).unwrap();
        assert_eq!(r.cap(lib().fu_for(OpKind::Add).unwrap()), 1);
    }

    #[test]
    fn parallel_ops_raise_cap() {
        let mut g = Dfg::new();
        for _ in 0..4 {
            g.add_op(OpKind::Mul);
        }
        let r = Restrictions::from_asap(&arr(vec![g]), &lib()).unwrap();
        assert_eq!(r.cap(lib().fu_for(OpKind::Mul).unwrap()), 4);
    }

    #[test]
    fn caps_take_max_over_blocks() {
        let mk = |n: usize| {
            let mut g = Dfg::new();
            for _ in 0..n {
                g.add_op(OpKind::Add);
            }
            g
        };
        let r = Restrictions::from_asap(&arr(vec![mk(2), mk(5), mk(1)]), &lib()).unwrap();
        assert_eq!(r.cap(lib().fu_for(OpKind::Add).unwrap()), 5);
    }

    #[test]
    fn shared_unit_kinds_accumulate_activity() {
        // Sub and Neg both run on the subtractor; two parallel ops of
        // different kinds still need two subtractors.
        let mut g = Dfg::new();
        g.add_op(OpKind::Sub);
        g.add_op(OpKind::Neg);
        let r = Restrictions::from_asap(&arr(vec![g]), &lib()).unwrap();
        assert_eq!(r.cap(lib().fu_for(OpKind::Sub).unwrap()), 2);
    }

    #[test]
    fn unused_kinds_cap_at_zero() {
        let mut g = Dfg::new();
        g.add_op(OpKind::Add);
        let r = Restrictions::from_asap(&arr(vec![g]), &lib()).unwrap();
        assert_eq!(r.cap(lib().fu_for(OpKind::Div).unwrap()), 0);
    }

    #[test]
    fn tighten_only_lowers() {
        let mut g = Dfg::new();
        for _ in 0..4 {
            g.add_op(OpKind::Const);
        }
        let lib = lib();
        let cg = lib.fu_for(OpKind::Const).unwrap();
        let mut r = Restrictions::from_asap(&arr(vec![g]), &lib).unwrap();
        assert_eq!(r.cap(cg), 4);
        r.tighten(cg, 1);
        assert_eq!(r.cap(cg), 1, "manual design iteration");
        r.tighten(cg, 10);
        assert_eq!(r.cap(cg), 1, "tighten never raises");
    }

    #[test]
    fn multi_cycle_activity_counts() {
        // Two muls where the second starts while the first is still
        // running (via an add delaying it by one step).
        let mut g = Dfg::new();
        let _m1 = g.add_op(OpKind::Mul);
        let a = g.add_op(OpKind::Add);
        let m2 = g.add_op(OpKind::Mul);
        g.add_edge(a, m2).unwrap();
        let r = Restrictions::from_asap(&arr(vec![g]), &lib()).unwrap();
        assert_eq!(r.cap(lib().fu_for(OpKind::Mul).unwrap()), 2);
    }

    #[test]
    fn total_cap_and_display() {
        let mut g = Dfg::new();
        g.add_op(OpKind::Add);
        g.add_op(OpKind::Add);
        g.add_op(OpKind::Mul);
        let lib = lib();
        let r = Restrictions::from_asap(&arr(vec![g]), &lib).unwrap();
        assert_eq!(r.total_cap(), 3);
        let text = r.display_with(&lib);
        assert!(text.contains("adder≤2"));
        assert!(text.contains("multiplier≤1"));
        assert!(format!("{r}").contains("≤2"));
    }

    #[test]
    fn empty_app_has_no_caps() {
        let r = Restrictions::from_asap(&arr(vec![]), &lib()).unwrap();
        assert_eq!(r.total_cap(), 0);
        assert_eq!(r.iter().count(), 0);
    }
}
