//! Error type for the allocation algorithm.

use lycos_hwlib::HwError;
use lycos_sched::SchedError;
use std::error::Error;
use std::fmt;

/// Errors from FURO computation or the allocation algorithm.
#[derive(Clone, PartialEq, Debug)]
pub enum AllocError {
    /// A scheduling step failed (cyclic DFG, missing unit, …).
    Sched(SchedError),
    /// A hardware-library lookup failed.
    Hw(HwError),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::Sched(e) => write!(f, "scheduling failed: {e}"),
            AllocError::Hw(e) => write!(f, "hardware library lookup failed: {e}"),
        }
    }
}

impl Error for AllocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AllocError::Sched(e) => Some(e),
            AllocError::Hw(e) => Some(e),
        }
    }
}

impl From<SchedError> for AllocError {
    fn from(e: SchedError) -> Self {
        AllocError::Sched(e)
    }
}

impl From<HwError> for AllocError {
    fn from(e: HwError) -> Self {
        AllocError::Hw(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lycos_ir::OpKind;

    #[test]
    fn display_and_sources() {
        let e: AllocError = SchedError::NoUnitFor { op: OpKind::Div }.into();
        assert!(format!("{e}").contains("div"));
        assert!(Error::source(&e).is_some());
        let e: AllocError = HwError::NoUnitFor { op: OpKind::Mul }.into();
        assert!(format!("{e}").contains("mul"));
        assert!(Error::source(&e).is_some());
    }
}
