//! Table 1 shape assertions: who wins, by roughly what factor, and
//! whether the §5 design iterations recover the gap — the properties
//! the paper's evaluation rests on.
//!
//! The full exhaustive search lives in the bench harness; these tests
//! keep runtimes reasonable by exhausting only the small spaces (`hal`)
//! and sampling the large ones.

use lycos::core::{allocate, AllocConfig, Restrictions};
use lycos::explore::{apply_iteration, random_search};
use lycos::hwlib::{Area, HwLibrary};
use lycos::pace::{exhaustive_best, partition, PaceConfig};

struct Flow {
    heuristic_su: f64,
    iterated_su: Option<f64>,
    heuristic_alloc: lycos::core::RMap,
}

fn run_flow(app: &lycos::apps::BenchmarkApp) -> Flow {
    let bsbs = app.bsbs();
    let lib = HwLibrary::standard();
    let pace = PaceConfig::standard();
    let area = Area::new(app.area_budget);
    let restr = Restrictions::from_asap(&bsbs, &lib).unwrap();
    let out = allocate(
        &bsbs,
        &lib,
        &pace.eca,
        area,
        &restr,
        &AllocConfig::default(),
    )
    .unwrap();
    let heuristic = partition(&bsbs, &lib, &out.allocation, area, &pace).unwrap();
    let iterated_su = app.iteration.map(|hint| {
        let adjusted = apply_iteration(&out.allocation, hint, &lib);
        partition(&bsbs, &lib, &adjusted, area, &pace)
            .unwrap()
            .speedup_pct()
    });
    Flow {
        heuristic_su: heuristic.speedup_pct(),
        iterated_su,
        heuristic_alloc: out.allocation,
    }
}

#[test]
fn hal_heuristic_matches_exhaustive_best() {
    let app = lycos::apps::hal();
    let bsbs = app.bsbs();
    let lib = HwLibrary::standard();
    let pace = PaceConfig::standard();
    let area = Area::new(app.area_budget);
    let restr = Restrictions::from_asap(&bsbs, &lib).unwrap();
    let flow = run_flow(&app);
    let best = exhaustive_best(&bsbs, &lib, area, &restr, &pace, None).unwrap();
    let ratio = flow.heuristic_su / best.best_partition.speedup_pct();
    assert!(
        ratio > 0.95,
        "hal: heuristic must come close to the best (paper: equal); ratio {ratio:.3}"
    );
}

#[test]
fn straight_heuristic_close_to_sampled_best() {
    let app = lycos::apps::straight();
    let bsbs = app.bsbs();
    let lib = HwLibrary::standard();
    let pace = PaceConfig::standard();
    let area = Area::new(app.area_budget);
    let restr = Restrictions::from_asap(&bsbs, &lib).unwrap();
    let flow = run_flow(&app);
    let sampled = random_search(&bsbs, &lib, area, &restr, &pace, 64, 11).unwrap();
    let best_su = sampled.best_partition.speedup_pct().max(flow.heuristic_su);
    assert!(
        flow.heuristic_su >= best_su * 0.9,
        "straight: heuristic {:.0}% must be within 10% of the sampled best {best_su:.0}%",
        flow.heuristic_su
    );
}

#[test]
fn man_over_allocates_constant_generators() {
    let app = lycos::apps::man();
    let lib = HwLibrary::standard();
    let flow = run_flow(&app);
    let constgen = lib.by_name("constgen").unwrap();
    assert!(
        flow.heuristic_alloc.count(constgen) >= 4,
        "the §5 trigger: many constant generators, got {}",
        flow.heuristic_alloc.count(constgen)
    );
}

#[test]
fn man_iteration_multiplies_the_speedup() {
    let flow = run_flow(&lycos::apps::man());
    let iterated = flow.iterated_su.expect("man carries an iteration");
    assert!(
        iterated > flow.heuristic_su * 1.5,
        "constgen→1 must transform the partition: {:.0}% → {iterated:.0}%",
        flow.heuristic_su
    );
}

#[test]
fn eigen_over_allocates_dividers_and_iteration_recovers() {
    let app = lycos::apps::eigen();
    let lib = HwLibrary::standard();
    let flow = run_flow(&app);
    let divider = lib.by_name("divider").unwrap();
    assert_eq!(
        flow.heuristic_alloc.count(divider),
        2,
        "the §5 trigger: one divider too many"
    );
    let iterated = flow.iterated_su.expect("eigen carries an iteration");
    assert!(
        iterated > flow.heuristic_su * 1.2,
        "divider−1 must improve the partition: {:.0}% → {iterated:.0}%",
        flow.heuristic_su
    );
}

#[test]
fn speedups_order_like_the_paper() {
    // Paper Table 1 (best): hal > man > straight > eigen — the two
    // loop kernels dominate, eigen trails. Our reproduction preserves
    // the heuristic ordering hal > man > straight > eigen as well.
    let hal = run_flow(&lycos::apps::hal()).heuristic_su;
    let man = run_flow(&lycos::apps::man()).heuristic_su;
    let straight = run_flow(&lycos::apps::straight()).heuristic_su;
    let eigen = run_flow(&lycos::apps::eigen()).heuristic_su;
    assert!(hal > man, "hal {hal:.0}% vs man {man:.0}%");
    assert!(man > straight, "man {man:.0}% vs straight {straight:.0}%");
    assert!(
        straight > eigen,
        "straight {straight:.0}% vs eigen {eigen:.0}%"
    );
}

#[test]
fn table1_csv_pins_completion_and_unvisited_columns() {
    use lycos::explore::{table1_csv_row, table1_row, Table1Options, TABLE1_CSV_HEADER};

    assert!(
        TABLE1_CSV_HEADER.ends_with(",completion,unvisited"),
        "the anytime columns close the row: {TABLE1_CSV_HEADER}"
    );
    let lib = HwLibrary::standard();
    let pace = PaceConfig::standard();

    // A run-to-completion row keeps the pair even in stable mode:
    // `complete,0` is deterministic and diffable.
    let complete = table1_row(&lycos::apps::hal(), &lib, &pace, &Table1Options::default()).unwrap();
    let stable = table1_csv_row(&complete, false);
    assert!(
        stable.ends_with(",complete,0"),
        "complete rows pin the pair: {stable}"
    );

    // An already-expired deadline truncates deterministically — the
    // sweep polls the stop signal before its first evaluation. Timed
    // rows expose the marker; stable rows blank the pair, because
    // where a *real* deadline lands is wall-clock-dependent.
    let truncated = table1_row(
        &lycos::apps::hal(),
        &lib,
        &pace,
        &Table1Options {
            deadline_ms: Some(0),
            ..Table1Options::default()
        },
    )
    .unwrap();
    let timed = table1_csv_row(&truncated, true);
    let completion_at = TABLE1_CSV_HEADER
        .split(',')
        .position(|c| c == "completion")
        .expect("header names the completion column");
    assert_eq!(
        timed.split(',').nth(completion_at),
        Some("deadline"),
        "timed rows expose the truncation marker: {timed}"
    );
    let blanked = table1_csv_row(&truncated, false);
    assert!(
        blanked.ends_with(",,"),
        "stable mode blanks a truncated pair: {blanked}"
    );
}

#[test]
fn reduce_only_walks_validate_section_5_1() {
    // §5.1: starting from the automatic allocation, a designer can
    // always *reduce* units to improve — never needs to add.
    for app in [lycos::apps::man(), lycos::apps::eigen()] {
        let bsbs = app.bsbs();
        let lib = HwLibrary::standard();
        let pace = PaceConfig::standard();
        let area = Area::new(app.area_budget);
        let restr = Restrictions::from_asap(&bsbs, &lib).unwrap();
        let out = allocate(
            &bsbs,
            &lib,
            &pace.eca,
            area,
            &restr,
            &AllocConfig::default(),
        )
        .unwrap();
        let start = partition(&bsbs, &lib, &out.allocation, area, &pace)
            .unwrap()
            .speedup_pct();
        let (_, walked) =
            lycos::explore::reduce_only_walk(&bsbs, &lib, &out.allocation, area, &pace).unwrap();
        assert!(
            walked > start * 1.2,
            "{}: downward walk must unlock the partition ({start:.0}% → {walked:.0}%)",
            app.name
        );
    }
}
