//! ISSUE 2 acceptance: the memoised + multi-threaded search engine
//! returns a [`SearchResult`] identical to the seed sequential walk on
//! all four bundled benchmarks — best allocation, best partition, and
//! the `evaluated`/`skipped`/`truncated` accounting.
//!
//! `eigen`'s space is the one the paper calls "impossible" to exhaust
//! (footnote 1); its equivalence runs under an evaluation limit so the
//! suite stays quick, which also exercises the engine's skip-aware
//! truncation pre-walk.

use lycos::core::Restrictions;
use lycos::hwlib::{Area, HwLibrary};
use lycos::pace::{exhaustive_best, search_best, PaceConfig, SearchOptions, SearchResult};

fn check_app(name: &str, limit: Option<usize>) -> (SearchResult, SearchResult) {
    let app = lycos::apps::all()
        .into_iter()
        .find(|a| a.name == name)
        .expect("bundled app");
    let bsbs = app.bsbs();
    let lib = HwLibrary::standard();
    let pace = PaceConfig::standard();
    let area = Area::new(app.area_budget);
    let restr = Restrictions::from_asap(&bsbs, &lib).unwrap();

    let seed = exhaustive_best(&bsbs, &lib, area, &restr, &pace, limit).unwrap();
    let memoised = search_best(
        &bsbs,
        &lib,
        area,
        &restr,
        &pace,
        &SearchOptions {
            limit,
            ..SearchOptions::sequential()
        },
    )
    .unwrap();
    let parallel = search_best(
        &bsbs,
        &lib,
        area,
        &restr,
        &pace,
        &SearchOptions {
            threads: 4,
            limit,
            cache: true,
        },
    )
    .unwrap();

    assert_eq!(memoised, seed, "{name}: memoised != sequential seed");
    assert_eq!(parallel, seed, "{name}: parallel != sequential seed");
    // Identity is field-exact, not just PartialEq-close.
    for engine in [&memoised, &parallel] {
        assert_eq!(engine.best_allocation, seed.best_allocation, "{name}");
        assert_eq!(
            engine.best_partition.in_hw, seed.best_partition.in_hw,
            "{name}"
        );
        assert_eq!(
            engine.best_partition.total_time, seed.best_partition.total_time,
            "{name}"
        );
        assert_eq!(engine.evaluated, seed.evaluated, "{name}");
        assert_eq!(engine.skipped, seed.skipped, "{name}");
        assert_eq!(engine.space_size, seed.space_size, "{name}");
        assert_eq!(engine.truncated, seed.truncated, "{name}");
    }
    (seed, memoised)
}

#[test]
fn straight_search_is_engine_invariant() {
    let (seed, memo) = check_app("straight", None);
    assert!(!seed.truncated);
    assert!(memo.stats.hit_rate() > 0.5, "odometer locality");
}

#[test]
fn hal_search_is_engine_invariant() {
    let (seed, _) = check_app("hal", None);
    assert_eq!(seed.evaluated as u128, seed.space_size);
}

#[test]
fn man_search_is_engine_invariant() {
    let (seed, _) = check_app("man", None);
    assert!(seed.skipped > 0, "man's tight budget skips allocations");
}

#[test]
fn eigen_search_is_engine_invariant_under_limit() {
    let (seed, _) = check_app("eigen", Some(150));
    assert!(seed.truncated, "the limit must bite on eigen's space");
    assert_eq!(seed.evaluated, 150);
}

/// The ≥2× per-candidate claim of ISSUE 2, on the space that motivated
/// the engine. The release-mode margin is ~5× (see the `search_cost`
/// bench); this tripwire asserts 2×. Seed and memoised runs are
/// *interleaved* and their totals compared, so background load slows
/// both sides and preserves the ratio. Ignored in the default suite —
/// a wall-clock assertion does not belong in the functional gate where
/// sibling tests compete for cores; CI's perf-smoke job runs it
/// explicitly, in release, with nothing else scheduled:
/// `cargo test --release --test search_equiv -- --ignored`.
#[test]
#[ignore = "perf tripwire: run explicitly in release (CI perf-smoke job)"]
fn eigen_memoised_engine_is_at_least_twice_as_fast() {
    let app = lycos::apps::eigen();
    let bsbs = app.bsbs();
    let lib = HwLibrary::standard();
    let pace = PaceConfig::standard();
    let area = Area::new(app.area_budget);
    let restr = Restrictions::from_asap(&bsbs, &lib).unwrap();
    let limit = Some(150);

    let mut seed_secs = 0.0f64;
    let mut memo_secs = 0.0f64;
    for _ in 0..2 {
        let seed = exhaustive_best(&bsbs, &lib, area, &restr, &pace, limit).unwrap();
        seed_secs += seed.stats.elapsed.as_secs_f64();
        let memo = search_best(
            &bsbs,
            &lib,
            area,
            &restr,
            &pace,
            &SearchOptions {
                limit,
                ..SearchOptions::sequential()
            },
        )
        .unwrap();
        memo_secs += memo.stats.elapsed.as_secs_f64();
        assert_eq!(memo, seed);
    }
    let ratio = seed_secs / memo_secs.max(f64::EPSILON);
    assert!(
        ratio >= 2.0,
        "memoised engine only {ratio:.2}x faster than the seed walk on eigen"
    );
}
