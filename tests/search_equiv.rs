//! ISSUE 2/4/5 acceptance: every engine configuration returns a
//! [`SearchResult`] identical to the *seed* sequential walk on all
//! four bundled benchmarks — best allocation, best partition, and the
//! `evaluated`/`skipped`/`truncated` accounting. The ISSUE 5
//! branch-and-bound engine is additionally pinned *field-exact* on the
//! winner (allocation, partition, time, area — the full tie-break)
//! with its `bounded` effort bucket closing the accounting identity,
//! including the cache-off × bounded cross-product.
//!
//! The seed is reproduced here verbatim (`reference_best`): a plain
//! odometer walk evaluating every candidate through fresh metrics and
//! the retained PR 3 DP core (`reference_partition_from_metrics` —
//! nested `Vec` tables, `continue`-based run scan). Everything the
//! optimised stack does — scratch reuse, monotone pruning, run-table
//! truncation, metric memoisation, candidate-level fan-out and the
//! intra-candidate `dp_threads` row split — must be invisible against
//! it, in every combination.
//!
//! `eigen`'s space is the one the paper calls "impossible" to exhaust
//! (footnote 1); its equivalence runs under an evaluation limit so the
//! suite stays quick, which also exercises the engine's skip-aware
//! truncation pre-walk.

use lycos::core::{RMap, Restrictions};
use lycos::hwlib::{Area, HwLibrary};
use lycos::pace::{
    compute_metrics, exhaustive_best, reference_partition_from_metrics, search_best, CommCosts,
    PaceConfig, Partition, SearchOptions, SearchResult, SearchStats,
};

/// The seed partition path: fresh metrics, a fresh comm table and the
/// retained pre-optimisation DP core, per call.
fn reference_partition(
    bsbs: &lycos::ir::BsbArray,
    lib: &HwLibrary,
    allocation: &RMap,
    total_area: Area,
    pace: &PaceConfig,
) -> Partition {
    let datapath = allocation.area(lib);
    let ctl = total_area.checked_sub(datapath).expect("candidate fits");
    let metrics = compute_metrics(bsbs, lib, allocation, pace).expect("schedulable");
    let mut comm = CommCosts::new(bsbs.len());
    reference_partition_from_metrics(bsbs, &metrics, &mut comm, datapath, ctl, pace)
}

/// The seed exhaustive walk, reproduced from the pre-optimisation
/// engine: sequential odometer, skip-on-area, truncate-on-limit,
/// strict `(time, area)` improvement.
fn reference_best(
    bsbs: &lycos::ir::BsbArray,
    lib: &HwLibrary,
    total_area: Area,
    restrictions: &Restrictions,
    pace: &PaceConfig,
    limit: Option<usize>,
) -> SearchResult {
    let dims: Vec<_> = restrictions.iter().collect();
    let space: u128 = dims.iter().map(|&(_, cap)| cap as u128 + 1).product();

    let mut best_allocation = RMap::new();
    let mut best_partition = reference_partition(bsbs, lib, &best_allocation, total_area, pace);
    let mut best_area = best_allocation.area(lib);
    let mut best_index = 0u128;
    let mut evaluated = 1usize;
    let mut skipped = 0usize;
    let mut truncated = false;

    let mut counts = vec![0u32; dims.len()];
    let mut index = 0u128;
    'outer: loop {
        let mut pos = 0;
        loop {
            if pos == dims.len() {
                break 'outer;
            }
            counts[pos] += 1;
            if counts[pos] <= dims[pos].1 {
                break;
            }
            counts[pos] = 0;
            pos += 1;
        }
        index += 1;
        let candidate: RMap = dims
            .iter()
            .zip(&counts)
            .map(|(&(fu, _), &c)| (fu, c))
            .collect();
        let candidate_area = candidate.area(lib);
        if candidate_area > total_area {
            skipped += 1;
            continue;
        }
        if let Some(max) = limit {
            if evaluated >= max {
                truncated = true;
                break;
            }
        }
        let p = reference_partition(bsbs, lib, &candidate, total_area, pace);
        evaluated += 1;
        let better = p.total_time < best_partition.total_time
            || (p.total_time == best_partition.total_time && candidate_area < best_area);
        if better {
            best_allocation = candidate;
            best_partition = p;
            best_area = candidate_area;
            best_index = index;
        }
    }

    SearchResult {
        best_allocation,
        best_partition,
        best_gates: best_area.gates(),
        best_index,
        evaluated,
        skipped,
        space_size: space,
        truncated,
        stats: SearchStats::default(),
    }
}

/// Every engine configuration the optimised stack offers, against the
/// seed: the (new-core) exhaustive walk, the memoised sequential
/// engine, the candidate-parallel engine, and the intra-candidate
/// `dp_threads` split — with the metric cache both on and off.
fn check_app(name: &str, limit: Option<usize>) -> (SearchResult, SearchResult) {
    let app = lycos::apps::all()
        .into_iter()
        .find(|a| a.name == name)
        .expect("bundled app");
    check_engines(name, &app.bsbs(), Area::new(app.area_budget), limit)
}

/// The engine cross-product against the seed walk, for any
/// application — bundled benchmarks and the synthetic hardness corpus
/// alike.
fn check_engines(
    name: &str,
    bsbs: &lycos::ir::BsbArray,
    area: Area,
    limit: Option<usize>,
) -> (SearchResult, SearchResult) {
    let bsbs = bsbs.clone();
    let lib = HwLibrary::standard();
    let pace = PaceConfig::standard();
    let restr = Restrictions::from_asap(&bsbs, &lib).unwrap();

    let seed = reference_best(&bsbs, &lib, area, &restr, &pace, limit);
    let walk = exhaustive_best(&bsbs, &lib, area, &restr, &pace, limit).unwrap();
    assert_eq!(walk, seed, "{name}: new-core exhaustive != seed walk");

    let memoised = search_best(
        &bsbs,
        &lib,
        area,
        &restr,
        &pace,
        &SearchOptions {
            limit,
            ..SearchOptions::sequential()
        },
    )
    .unwrap();

    // Unbounded engines must be *identical* to the seed, so the
    // ISSUE 6 levers ride along here: `simd` (bit-identical DP rows),
    // `steal` (chunked scheduling, same accounting) and their off
    // switches must all be invisible.
    let variants = [
        ("parallel", 4usize, true, 1usize, true, true),
        ("dp-split", 1, true, 2, true, true),
        ("parallel+dp-split,cache-off", 2, false, 2, true, true),
        ("parallel,steal-off", 4, true, 1, true, false),
        ("parallel,scalar-dp", 3, true, 1, false, true),
        ("steal-off,scalar-dp,cache-off", 2, false, 1, false, false),
    ];
    let mut engines = vec![("memoised", memoised.clone())];
    for (label, threads, cache, dp_threads, simd, steal) in variants {
        let got = search_best(
            &bsbs,
            &lib,
            area,
            &restr,
            &pace,
            &SearchOptions {
                threads,
                limit,
                cache,
                dp_threads,
                bound: false,
                simd,
                steal,
                ..SearchOptions::default()
            },
        )
        .unwrap();
        engines.push((label, got));
    }

    // The branch-and-bound engine: field-exact winner (allocation,
    // partition, time, area — the full tie-break), while `evaluated`/
    // `skipped`/`bounded` become engine-effort telemetry that must
    // still account for every point of the space. Samples the
    // bound × bound_comm × simd × steal × threads × cache
    // cross-product.
    for (label, threads, cache, bound_comm, simd, steal) in [
        ("bounded", 1usize, true, true, true, true),
        ("bounded,parallel", 4, true, true, true, true),
        ("bounded,cache-off", 1, false, false, true, false),
        ("bounded,parallel,cache-off", 2, false, true, false, true),
        ("bounded,relaxed,parallel", 4, true, false, true, true),
        ("bounded,parallel,steal-off", 4, true, true, true, false),
    ] {
        let got = search_best(
            &bsbs,
            &lib,
            area,
            &restr,
            &pace,
            &SearchOptions {
                threads,
                limit,
                cache,
                dp_threads: 1,
                bound: true,
                bound_comm,
                simd,
                steal,
                ..SearchOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            got.best_allocation, seed.best_allocation,
            "{name}/{label}: winner allocation"
        );
        assert_eq!(
            got.best_partition, seed.best_partition,
            "{name}/{label}: winner partition (time, area, placement)"
        );
        assert_eq!(got.space_size, seed.space_size, "{name}/{label}");
        assert_eq!(got.truncated, seed.truncated, "{name}/{label}");
        assert!(
            got.evaluated <= seed.evaluated,
            "{name}/{label}: bounding never evaluates more"
        );
        assert_eq!(
            got.points_accounted(),
            got.space_size,
            "{name}/{label}: evaluated + skipped + bounded + truncated == space"
        );
    }

    // Identity is field-exact, not just PartialEq-close.
    for (label, engine) in &engines {
        assert_eq!(engine, &seed, "{name}/{label} != sequential seed");
        assert_eq!(
            engine.best_allocation, seed.best_allocation,
            "{name}/{label}"
        );
        assert_eq!(
            engine.best_partition.in_hw, seed.best_partition.in_hw,
            "{name}/{label}"
        );
        assert_eq!(
            engine.best_partition.total_time, seed.best_partition.total_time,
            "{name}/{label}"
        );
        assert_eq!(
            engine.best_partition.comm_time, seed.best_partition.comm_time,
            "{name}/{label}"
        );
        assert_eq!(
            engine.best_partition.controller_area, seed.best_partition.controller_area,
            "{name}/{label}"
        );
        assert_eq!(
            engine.best_partition.runs, seed.best_partition.runs,
            "{name}/{label}"
        );
        assert_eq!(engine.evaluated, seed.evaluated, "{name}/{label}");
        assert_eq!(engine.skipped, seed.skipped, "{name}/{label}");
        assert_eq!(engine.space_size, seed.space_size, "{name}/{label}");
        assert_eq!(engine.truncated, seed.truncated, "{name}/{label}");
    }
    (seed, memoised)
}

#[test]
fn straight_search_is_engine_invariant() {
    let (seed, memo) = check_app("straight", None);
    assert!(!seed.truncated);
    assert!(memo.stats.hit_rate() > 0.5, "odometer locality");
    // Keys are only allocated on insert, never per probe.
    assert_eq!(memo.stats.key_allocs, memo.stats.cache_misses);
}

#[test]
fn hal_search_is_engine_invariant() {
    let (seed, _) = check_app("hal", None);
    assert_eq!(seed.evaluated as u128, seed.space_size);
}

#[test]
fn man_search_is_engine_invariant() {
    let (seed, _) = check_app("man", None);
    assert!(seed.skipped > 0, "man's tight budget skips allocations");
}

/// The bound must genuinely bite on the bundled spaces: a sequential
/// bounded run (deterministic — no incumbent-sharing races) prunes a
/// large share of each space while returning the field-exact winner
/// (already asserted app-by-app above).
#[test]
fn bounded_engine_prunes_most_of_the_bundled_spaces() {
    for (name, limit) in [
        ("straight", None),
        ("hal", None),
        ("man", None),
        ("eigen", Some(2_000usize)),
    ] {
        let app = lycos::apps::all()
            .into_iter()
            .find(|a| a.name == name)
            .expect("bundled app");
        let bsbs = app.bsbs();
        let lib = HwLibrary::standard();
        let pace = PaceConfig::standard();
        let area = Area::new(app.area_budget);
        let restr = Restrictions::from_asap(&bsbs, &lib).unwrap();
        let bounded = search_best(
            &bsbs,
            &lib,
            area,
            &restr,
            &pace,
            &SearchOptions {
                limit,
                bound: true,
                ..SearchOptions::sequential()
            },
        )
        .unwrap();
        let unbounded = search_best(
            &bsbs,
            &lib,
            area,
            &restr,
            &pace,
            &SearchOptions {
                limit,
                ..SearchOptions::sequential()
            },
        )
        .unwrap();
        assert_eq!(bounded.best_allocation, unbounded.best_allocation, "{name}");
        assert_eq!(bounded.best_partition, unbounded.best_partition, "{name}");
        assert!(bounded.stats.bounded > 0, "{name}: nothing pruned");
        assert!(
            bounded.evaluated * 2 <= unbounded.evaluated,
            "{name}: bound should spare at least half the evaluations \
             ({} vs {})",
            bounded.evaluated,
            unbounded.evaluated
        );
        assert_eq!(bounded.points_accounted(), bounded.space_size, "{name}");
    }
}

/// ISSUE 6 corpus: fixed-seed synthetic applications from the two
/// hardness profiles run the whole engine cross-product against the
/// seed walk. `comm_dominated` stresses the segmented communication
/// floor (wide read fans, software barriers every fourth block);
/// `plateau_heavy` stresses tie-breaking on a flat time landscape
/// where many allocations share the optimum time.
#[test]
fn hardness_corpus_is_engine_invariant() {
    use lycos::explore::SyntheticSpec;
    for (label, spec, seeds) in [
        (
            "comm_dominated",
            SyntheticSpec::comm_dominated(),
            [7u64, 19],
        ),
        ("plateau_heavy", SyntheticSpec::plateau_heavy(), [3, 23]),
    ] {
        for seed in seeds {
            let bsbs = spec.generate(seed);
            let (seed_result, _) =
                check_engines(&format!("{label}#{seed}"), &bsbs, Area::new(8_000), None);
            assert!(
                !seed_result.truncated,
                "{label}#{seed}: corpus spaces are exhausted in full"
            );
        }
    }
}

#[test]
fn eigen_search_is_engine_invariant_under_limit() {
    let (seed, _) = check_app("eigen", Some(150));
    assert!(seed.truncated, "the limit must bite on eigen's space");
    assert_eq!(seed.evaluated, 150);
}

/// The ≥2× per-candidate claim of ISSUE 2, on the space that motivated
/// the engine — now measured against the *retained PR 3 seed walk*
/// (`reference_best`), because `exhaustive_best` itself adopted the
/// scratch-reuse core in ISSUE 4 and is no longer the slow baseline
/// it once was (the DP-core half of that win has its own 1.5× gate in
/// `bench_pace`). Seed and memoised runs are *interleaved* and their
/// totals compared, so background load slows both sides and preserves
/// the ratio. Ignored in the default suite — a wall-clock assertion
/// does not belong in the functional gate where sibling tests compete
/// for cores; CI's perf-smoke job runs it explicitly, in release, with
/// nothing else scheduled:
/// `cargo test --release --test search_equiv -- --ignored`.
#[test]
#[ignore = "perf tripwire: run explicitly in release (CI perf-smoke job)"]
fn eigen_memoised_engine_is_at_least_twice_as_fast() {
    use std::time::Instant;
    let app = lycos::apps::eigen();
    let bsbs = app.bsbs();
    let lib = HwLibrary::standard();
    let pace = PaceConfig::standard();
    let area = Area::new(app.area_budget);
    let restr = Restrictions::from_asap(&bsbs, &lib).unwrap();
    let limit = Some(150);

    let mut seed_secs = 0.0f64;
    let mut memo_secs = 0.0f64;
    for _ in 0..2 {
        let started = Instant::now();
        let seed = reference_best(&bsbs, &lib, area, &restr, &pace, limit);
        seed_secs += started.elapsed().as_secs_f64();
        let memo = search_best(
            &bsbs,
            &lib,
            area,
            &restr,
            &pace,
            &SearchOptions {
                limit,
                ..SearchOptions::sequential()
            },
        )
        .unwrap();
        memo_secs += memo.stats.elapsed.as_secs_f64();
        assert_eq!(memo, seed);
    }
    let ratio = seed_secs / memo_secs.max(f64::EPSILON);
    assert!(
        ratio >= 2.0,
        "memoised engine only {ratio:.2}x faster than the seed walk on eigen"
    );
}
