//! Cross-crate property tests: randomly generated applications must
//! uphold the allocator/partitioner invariants.

use lycos::core::{allocate, AllocConfig, RMap, Restrictions};
use lycos::hwlib::{Area, HwLibrary};
use lycos::ir::{Bsb, BsbArray, BsbId, BsbOrigin, Dfg, OpKind};
use lycos::pace::{partition, PaceConfig};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A random DAG of up to `max_ops` operations: edges only go from
/// lower to higher indices, so the result is acyclic by construction.
fn arb_dfg(max_ops: usize) -> impl Strategy<Value = Dfg> {
    let kinds = prop::sample::select(vec![
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Const,
        OpKind::Lt,
        OpKind::Shl,
    ]);
    (
        prop::collection::vec(kinds, 1..=max_ops),
        prop::collection::vec(any::<(u8, u8)>(), 0..=2 * max_ops),
    )
        .prop_map(|(ops, raw_edges)| {
            let mut dfg = Dfg::new();
            let ids: Vec<_> = ops.into_iter().map(|k| dfg.add_op(k)).collect();
            for (a, b) in raw_edges {
                let (a, b) = (a as usize % ids.len(), b as usize % ids.len());
                if a < b {
                    dfg.add_edge(ids[a], ids[b]).expect("forward edge");
                }
            }
            dfg
        })
}

fn arb_app(max_blocks: usize) -> impl Strategy<Value = BsbArray> {
    prop::collection::vec((arb_dfg(8), 1u64..500), 1..=max_blocks).prop_map(|blocks| {
        BsbArray::from_bsbs(
            "prop",
            blocks
                .into_iter()
                .enumerate()
                .map(|(i, (dfg, profile))| Bsb {
                    id: BsbId(i as u32),
                    name: format!("b{i}"),
                    dfg,
                    reads: BTreeSet::new(),
                    writes: BTreeSet::new(),
                    profile,
                    origin: BsbOrigin::Body,
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The allocator always balances its books and respects caps.
    #[test]
    fn allocator_invariants(app in arb_app(6), budget in 0u64..30_000) {
        let lib = HwLibrary::standard();
        let pace = PaceConfig::standard();
        let area = Area::new(budget);
        let restr = Restrictions::from_asap(&app, &lib).unwrap();
        let out = allocate(&app, &lib, &pace.eca, area, &restr,
                           &AllocConfig::default()).unwrap();
        // Books balance exactly.
        prop_assert_eq!(
            out.allocation.area(&lib) + out.controller_area + out.remaining,
            area
        );
        // Restrictions hold per kind.
        for (fu, count) in out.allocation.iter() {
            prop_assert!(count <= restr.cap(fu));
        }
        // Pseudo-HW blocks have their required units covered.
        for (i, &h) in out.in_hw.iter().enumerate() {
            if h && !app[i].dfg.is_empty() {
                let req = lycos::core::required_resources(&app[i], &lib).unwrap();
                prop_assert!(out.allocation.covers(&req),
                    "block {} moved without units", i);
            }
        }
    }

    /// PACE never loses to all-software and never overspends.
    #[test]
    fn partitioner_invariants(app in arb_app(6), budget in 0u64..30_000) {
        let lib = HwLibrary::standard();
        let pace = PaceConfig::standard();
        let area = Area::new(budget);
        let restr = Restrictions::from_asap(&app, &lib).unwrap();
        let out = allocate(&app, &lib, &pace.eca, area, &restr,
                           &AllocConfig::default()).unwrap();
        let p = partition(&app, &lib, &out.allocation, area, &pace).unwrap();
        prop_assert!(p.total_time <= p.all_sw_time);
        prop_assert!(p.datapath_area + p.controller_area <= area);
        prop_assert!(p.speedup_pct() >= 0.0);
        // Blocks in runs are exactly the HW blocks.
        let run_blocks: usize = p.runs.iter().map(|r| r.len()).sum();
        prop_assert_eq!(run_blocks, p.hw_count());
    }

    /// The whole flow is deterministic.
    #[test]
    fn flow_is_deterministic(app in arb_app(5), budget in 100u64..20_000) {
        let lib = HwLibrary::standard();
        let pace = PaceConfig::standard();
        let area = Area::new(budget);
        let restr = Restrictions::from_asap(&app, &lib).unwrap();
        let a = allocate(&app, &lib, &pace.eca, area, &restr,
                         &AllocConfig::default()).unwrap();
        let b = allocate(&app, &lib, &pace.eca, area, &restr,
                         &AllocConfig::default()).unwrap();
        prop_assert_eq!(&a.allocation, &b.allocation);
        let pa = partition(&app, &lib, &a.allocation, area, &pace).unwrap();
        let pb = partition(&app, &lib, &b.allocation, area, &pace).unwrap();
        prop_assert_eq!(pa.total_time, pb.total_time);
        prop_assert_eq!(pa.in_hw, pb.in_hw);
    }

    /// RMap algebra: the Definition 1 laws hold for arbitrary maps.
    #[test]
    fn rmap_laws(
        a in prop::collection::btree_map(0u32..8, 1u32..5, 0..6),
        b in prop::collection::btree_map(0u32..8, 1u32..5, 0..6),
    ) {
        use lycos::hwlib::FuId;
        let a: RMap = a.into_iter().map(|(k, v)| (FuId(k), v)).collect();
        let b: RMap = b.into_iter().map(|(k, v)| (FuId(k), v)).collect();
        // Union is commutative and sums counts.
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(
            a.union(&b).total_units(),
            a.total_units() + b.total_units()
        );
        // Difference never exceeds the minuend; (a \ b) ∪ (a ∩ b)-ish:
        // a \ b ⊆ a and (a \ b) ∪ b ⊇ a.
        prop_assert!(a.covers(&a.difference(&b)));
        prop_assert!(a.difference(&b).union(&b).covers(&a));
        // Identity and annihilation.
        prop_assert_eq!(a.union(&RMap::new()), a.clone());
        prop_assert!(a.difference(&a).is_empty());
    }
}
