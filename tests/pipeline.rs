//! End-to-end integration: LYC source → CDFG → BSBs → allocation →
//! PACE partition, across all bundled benchmarks.

use lycos::core::{allocate, AllocConfig, Restrictions};
use lycos::hwlib::{Area, HwLibrary};
use lycos::pace::{partition, PaceConfig};

/// Allocation plus partition for one app at its Table 1 budget.
fn run_app(app: &lycos::apps::BenchmarkApp) -> (lycos::core::AllocOutcome, lycos::pace::Partition) {
    let bsbs = app.bsbs();
    let lib = HwLibrary::standard();
    let pace = PaceConfig::standard();
    let area = Area::new(app.area_budget);
    let restr = Restrictions::from_asap(&bsbs, &lib).expect("schedulable");
    let out = allocate(
        &bsbs,
        &lib,
        &pace.eca,
        area,
        &restr,
        &AllocConfig::default(),
    )
    .expect("allocatable");
    let part = partition(&bsbs, &lib, &out.allocation, area, &pace).expect("partitionable");
    (out, part)
}

#[test]
fn every_benchmark_flows_end_to_end() {
    for app in lycos::apps::all() {
        let (out, part) = run_app(&app);
        assert!(
            !out.allocation.is_empty(),
            "{}: allocation must not be empty",
            app.name
        );
        assert!(
            part.speedup_pct() > 0.0,
            "{}: partition must gain over all-software",
            app.name
        );
        assert!(
            part.total_time <= part.all_sw_time,
            "{}: hybrid never loses",
            app.name
        );
    }
}

#[test]
fn allocations_never_exceed_the_budget() {
    let lib = HwLibrary::standard();
    for app in lycos::apps::all() {
        let (out, part) = run_app(&app);
        let budget = Area::new(app.area_budget);
        assert!(
            out.allocation.area(&lib) + out.controller_area <= budget,
            "{}: allocator overspent",
            app.name
        );
        assert!(
            part.datapath_area + part.controller_area <= budget,
            "{}: partitioner overspent",
            app.name
        );
    }
}

#[test]
fn restrictions_bound_every_allocation() {
    let lib = HwLibrary::standard();
    for app in lycos::apps::all() {
        let bsbs = app.bsbs();
        let restr = Restrictions::from_asap(&bsbs, &lib).unwrap();
        let (out, _) = run_app(&app);
        for (fu, count) in out.allocation.iter() {
            assert!(
                count <= restr.cap(fu),
                "{}: {} × {} exceeds cap {}",
                app.name,
                count,
                lib.fu(fu).name,
                restr.cap(fu)
            );
        }
    }
}

#[test]
fn partition_runs_are_contiguous_and_consistent() {
    for app in lycos::apps::all() {
        let (_, part) = run_app(&app);
        let mut covered = vec![false; part.in_hw.len()];
        for run in &part.runs {
            assert!(run.start < run.end, "{}: empty run", app.name);
            for i in run.clone() {
                assert!(part.in_hw[i], "{}: run block not marked HW", app.name);
                assert!(!covered[i], "{}: runs overlap", app.name);
                covered[i] = true;
            }
        }
        for (i, (&h, &c)) in part.in_hw.iter().zip(&covered).enumerate() {
            assert_eq!(h, c, "{}: block {i} marked HW outside any run", app.name);
        }
    }
}

#[test]
fn hot_loops_end_up_in_hardware() {
    // For hal and man the hot inner-loop body must be placed in
    // hardware by the automatic flow — that is the whole point of the
    // speed-up architecture (Figure 1).
    for app in [lycos::apps::hal(), lycos::apps::man()] {
        let bsbs = app.bsbs();
        let (_, part) = run_app(&app);
        let hottest = (0..bsbs.len())
            .max_by_key(|&i| bsbs[i].dynamic_ops())
            .expect("non-empty");
        assert!(
            part.in_hw[hottest],
            "{}: hottest block `{}` stayed in software",
            app.name, bsbs[hottest].name
        );
    }
}

#[test]
fn emit_blocks_never_move_to_hardware() {
    for app in lycos::apps::all() {
        let bsbs = app.bsbs();
        let (_, part) = run_app(&app);
        for (i, b) in bsbs.iter().enumerate() {
            if b.dfg.is_empty() {
                assert!(!part.in_hw[i], "{}: empty block {} in HW", app.name, b.name);
            }
        }
    }
}

#[test]
fn profile_overrides_change_the_partition_inputs() {
    // Re-profile man with a deeper escape iteration: the inner loop
    // gets hotter, software time grows accordingly.
    use lycos::ir::{extract_bsbs, ProfileOverrides};
    let app = lycos::apps::man();
    let base = extract_bsbs(&app.cdfg, None).unwrap();
    let mut deeper = ProfileOverrides::new();
    deeper.set_trip("iter", 64);
    let hot = extract_bsbs(&app.cdfg, Some(&deeper)).unwrap();
    assert!(hot.total_dynamic_ops() > base.total_dynamic_ops());
}

#[test]
fn cli_level_source_round_trip() {
    // The bundled sources re-parse to the same BSB structure.
    for app in lycos::apps::all() {
        let reparsed = lycos::frontend::compile(app.source).expect("bundled source parses");
        let a = lycos::ir::extract_bsbs(&reparsed, None).unwrap();
        let b = app.bsbs();
        assert_eq!(a.len(), b.len(), "{}", app.name);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.profile, y.profile);
            assert_eq!(x.op_count(), y.op_count());
        }
    }
}
