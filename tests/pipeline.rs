//! End-to-end integration: LYC source → CDFG → BSBs → allocation →
//! PACE partition, across all bundled benchmarks — through the layered
//! API and through the `Pipeline` facade, which must agree.

use lycos::core::{allocate, AllocConfig, Restrictions};
use lycos::hwlib::{Area, HwLibrary};
use lycos::pace::{partition, PaceConfig};
use lycos::{LycosError, Pipeline};

/// Allocation plus partition for one app at its Table 1 budget.
fn run_app(app: &lycos::apps::BenchmarkApp) -> (lycos::core::AllocOutcome, lycos::pace::Partition) {
    let bsbs = app.bsbs();
    let lib = HwLibrary::standard();
    let pace = PaceConfig::standard();
    let area = Area::new(app.area_budget);
    let restr = Restrictions::from_asap(&bsbs, &lib).expect("schedulable");
    let out = allocate(
        &bsbs,
        &lib,
        &pace.eca,
        area,
        &restr,
        &AllocConfig::default(),
    )
    .expect("allocatable");
    let part = partition(&bsbs, &lib, &out.allocation, area, &pace).expect("partitionable");
    (out, part)
}

#[test]
fn every_benchmark_flows_end_to_end() {
    for app in lycos::apps::all() {
        let (out, part) = run_app(&app);
        assert!(
            !out.allocation.is_empty(),
            "{}: allocation must not be empty",
            app.name
        );
        assert!(
            part.speedup_pct() > 0.0,
            "{}: partition must gain over all-software",
            app.name
        );
        assert!(
            part.total_time <= part.all_sw_time,
            "{}: hybrid never loses",
            app.name
        );
    }
}

#[test]
fn allocations_never_exceed_the_budget() {
    let lib = HwLibrary::standard();
    for app in lycos::apps::all() {
        let (out, part) = run_app(&app);
        let budget = Area::new(app.area_budget);
        assert!(
            out.allocation.area(&lib) + out.controller_area <= budget,
            "{}: allocator overspent",
            app.name
        );
        assert!(
            part.datapath_area + part.controller_area <= budget,
            "{}: partitioner overspent",
            app.name
        );
    }
}

#[test]
fn restrictions_bound_every_allocation() {
    let lib = HwLibrary::standard();
    for app in lycos::apps::all() {
        let bsbs = app.bsbs();
        let restr = Restrictions::from_asap(&bsbs, &lib).unwrap();
        let (out, _) = run_app(&app);
        for (fu, count) in out.allocation.iter() {
            assert!(
                count <= restr.cap(fu),
                "{}: {} × {} exceeds cap {}",
                app.name,
                count,
                lib.fu(fu).name,
                restr.cap(fu)
            );
        }
    }
}

#[test]
fn partition_runs_are_contiguous_and_consistent() {
    for app in lycos::apps::all() {
        let (_, part) = run_app(&app);
        let mut covered = vec![false; part.in_hw.len()];
        for run in &part.runs {
            assert!(run.start < run.end, "{}: empty run", app.name);
            for i in run.clone() {
                assert!(part.in_hw[i], "{}: run block not marked HW", app.name);
                assert!(!covered[i], "{}: runs overlap", app.name);
                covered[i] = true;
            }
        }
        for (i, (&h, &c)) in part.in_hw.iter().zip(&covered).enumerate() {
            assert_eq!(h, c, "{}: block {i} marked HW outside any run", app.name);
        }
    }
}

#[test]
fn hot_loops_end_up_in_hardware() {
    // For hal and man the hot inner-loop body must be placed in
    // hardware by the automatic flow — that is the whole point of the
    // speed-up architecture (Figure 1).
    for app in [lycos::apps::hal(), lycos::apps::man()] {
        let bsbs = app.bsbs();
        let (_, part) = run_app(&app);
        let hottest = (0..bsbs.len())
            .max_by_key(|&i| bsbs[i].dynamic_ops())
            .expect("non-empty");
        assert!(
            part.in_hw[hottest],
            "{}: hottest block `{}` stayed in software",
            app.name, bsbs[hottest].name
        );
    }
}

#[test]
fn emit_blocks_never_move_to_hardware() {
    for app in lycos::apps::all() {
        let bsbs = app.bsbs();
        let (_, part) = run_app(&app);
        for (i, b) in bsbs.iter().enumerate() {
            if b.dfg.is_empty() {
                assert!(!part.in_hw[i], "{}: empty block {} in HW", app.name, b.name);
            }
        }
    }
}

#[test]
fn profile_overrides_change_the_partition_inputs() {
    // Re-profile man with a deeper escape iteration: the inner loop
    // gets hotter, software time grows accordingly.
    use lycos::ir::{extract_bsbs, ProfileOverrides};
    let app = lycos::apps::man();
    let base = extract_bsbs(&app.cdfg, None).unwrap();
    let mut deeper = ProfileOverrides::new();
    deeper.set_trip("iter", 64);
    let hot = extract_bsbs(&app.cdfg, Some(&deeper)).unwrap();
    assert!(hot.total_dynamic_ops() > base.total_dynamic_ops());
}

#[test]
fn pipeline_drives_a_source_end_to_end() -> Result<(), LycosError> {
    // The satellite flow: one LYC source through compile →
    // extract_bsbs → allocate → partition, all via the builder.
    let pipeline = Pipeline::new(
        "app diffeq;
         loop l times 1000 test (x < a) {
           t = u * dx;
           u = u - 3 * x * t - 3 * y * dx;
           y = y + t;
           x = x + dx;
         }
         emit y;",
    )
    .with_library(HwLibrary::standard())
    .with_budget(Area::new(7_000));

    let compiled = pipeline.compile()?;
    assert_eq!(compiled.cdfg.name(), "diffeq");
    assert!(compiled.bsbs.len() >= 3, "test, body and emit blocks");

    let allocated = pipeline.allocate()?;
    assert!(!allocated.allocation().is_empty());
    let lib = allocated.library();
    assert!(
        allocated.allocation().area(lib) + allocated.outcome.controller_area <= allocated.budget()
    );

    let part = allocated.partition()?;
    assert!(part.speedup_pct() > 0.0, "hot loop must gain");
    assert!(part.hw_count() >= 1);
    Ok(())
}

#[test]
fn pipeline_agrees_with_the_layered_api() {
    for app in lycos::apps::all() {
        let (out, part) = run_app(&app);
        let allocated = Pipeline::for_app(&app)
            .allocate()
            .expect("pipeline allocates");
        assert_eq!(
            allocated.allocation(),
            &out.allocation,
            "{}: same allocation either way",
            app.name
        );
        let p = allocated.partition().expect("pipeline partitions");
        assert_eq!(p.partition.total_time, part.total_time, "{}", app.name);
        assert_eq!(p.partition.in_hw, part.in_hw, "{}", app.name);
    }
}

#[test]
fn pipeline_produces_table1_shaped_output() {
    // The Table 1 row shape, via the facade: a positive speed-up, a
    // data-path share in (0, 1], and a static HW/SW split that sums
    // to one.
    for app in lycos::apps::all() {
        let allocated = Pipeline::for_app(&app).allocate().expect("allocates");
        let part = allocated.partition().expect("partitions");
        let su = part.speedup_pct();
        let size = part.partition.size_fraction();
        let hw = part.partition.hw_fraction_static(&allocated.bsbs);
        assert!(su > 0.0, "{}: SU column positive", app.name);
        assert!(
            (0.0..=1.0).contains(&size) && size > 0.0,
            "{}: Size column is a fraction, got {size}",
            app.name
        );
        assert!(
            (0.0..=1.0).contains(&hw),
            "{}: HW/SW column is a fraction, got {hw}",
            app.name
        );
    }
}

#[test]
fn pipeline_errors_carry_the_failing_stage() {
    let err = Pipeline::new("app broken; x = ;").allocate().unwrap_err();
    assert!(matches!(err, LycosError::Frontend(_)), "got {err}");
    let msg = err.to_string();
    assert!(msg.starts_with("frontend: "), "got {msg}");
}

#[test]
fn cli_level_source_round_trip() {
    // The bundled sources re-parse to the same BSB structure.
    for app in lycos::apps::all() {
        let reparsed = lycos::frontend::compile(app.source).expect("bundled source parses");
        let a = lycos::ir::extract_bsbs(&reparsed, None).unwrap();
        let b = app.bsbs();
        assert_eq!(a.len(), b.len(), "{}", app.name);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.profile, y.profile);
            assert_eq!(x.op_count(), y.op_count());
        }
    }
}
