//! The unified error type of the facade.

use lycos_core::AllocError;
use lycos_frontend::FrontError;
use lycos_hwlib::HwError;
use lycos_ir::IrError;
use lycos_pace::PaceError;
use lycos_sched::SchedError;
use std::error::Error;
use std::fmt;

/// Any error a [`crate::Pipeline`] stage can produce.
///
/// Every per-crate error type converts into `LycosError` via `From`,
/// so `?` works across the whole flow:
///
/// ```
/// use lycos::LycosError;
///
/// fn flow() -> Result<(), LycosError> {
///     let cdfg = lycos::frontend::compile("app a; y = x * x;")?; // FrontError
///     let bsbs = lycos::ir::extract_bsbs(&cdfg, None)?;          // IrError
///     let lib = lycos::hwlib::HwLibrary::standard();
///     let restr = lycos::core::Restrictions::from_asap(&bsbs, &lib)?; // AllocError
///     let _ = restr;
///     Ok(())
/// }
/// flow().unwrap();
/// ```
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum LycosError {
    /// Lexing, parsing or lowering LYC source failed.
    Frontend(FrontError),
    /// Building or validating the application model failed.
    Ir(IrError),
    /// A hardware-library lookup failed.
    Hw(HwError),
    /// A scheduling step failed.
    Sched(SchedError),
    /// The allocation algorithm failed.
    Alloc(AllocError),
    /// The PACE partitioner failed.
    Pace(PaceError),
}

impl fmt::Display for LycosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LycosError::Frontend(e) => write!(f, "frontend: {e}"),
            LycosError::Ir(e) => write!(f, "application model: {e}"),
            LycosError::Hw(e) => write!(f, "hardware library: {e}"),
            LycosError::Sched(e) => write!(f, "scheduling: {e}"),
            LycosError::Alloc(e) => write!(f, "allocation: {e}"),
            LycosError::Pace(e) => write!(f, "partitioning: {e}"),
        }
    }
}

impl Error for LycosError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LycosError::Frontend(e) => Some(e),
            LycosError::Ir(e) => Some(e),
            LycosError::Hw(e) => Some(e),
            LycosError::Sched(e) => Some(e),
            LycosError::Alloc(e) => Some(e),
            LycosError::Pace(e) => Some(e),
        }
    }
}

impl From<FrontError> for LycosError {
    fn from(e: FrontError) -> Self {
        LycosError::Frontend(e)
    }
}

impl From<IrError> for LycosError {
    fn from(e: IrError) -> Self {
        LycosError::Ir(e)
    }
}

impl From<HwError> for LycosError {
    fn from(e: HwError) -> Self {
        LycosError::Hw(e)
    }
}

impl From<SchedError> for LycosError {
    fn from(e: SchedError) -> Self {
        LycosError::Sched(e)
    }
}

impl From<AllocError> for LycosError {
    fn from(e: AllocError) -> Self {
        LycosError::Alloc(e)
    }
}

impl From<PaceError> for LycosError {
    fn from(e: PaceError) -> Self {
        LycosError::Pace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lycos_ir::{OpId, OpKind};

    #[test]
    fn every_layer_converts() {
        let front: LycosError = FrontError::UnknownFunc { name: "f".into() }.into();
        assert!(matches!(front, LycosError::Frontend(_)));
        let ir: LycosError = IrError::SelfLoop { op: OpId(0) }.into();
        assert!(matches!(ir, LycosError::Ir(_)));
        let hw: LycosError = HwError::NoUnitFor { op: OpKind::Add }.into();
        assert!(matches!(hw, LycosError::Hw(_)));
        let sched: LycosError = SchedError::NoUnitFor { op: OpKind::Div }.into();
        assert!(matches!(sched, LycosError::Sched(_)));
        let alloc: LycosError = AllocError::Hw(HwError::NoUnitFor { op: OpKind::Mul }).into();
        assert!(matches!(alloc, LycosError::Alloc(_)));
        let pace: LycosError = PaceError::Hw(HwError::NoUnitFor { op: OpKind::Mul }).into();
        assert!(matches!(pace, LycosError::Pace(_)));
    }

    #[test]
    fn display_prefixes_the_stage() {
        let e: LycosError = HwError::NoUnitFor { op: OpKind::Add }.into();
        assert!(format!("{e}").starts_with("hardware library: "));
        assert!(Error::source(&e).is_some());
    }
}
