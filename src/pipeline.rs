//! The end-to-end pipeline: LYC source → CDFG → BSBs → allocation →
//! partition.
//!
//! [`Pipeline`] is a builder over the whole reproduction. Configure it
//! with a source text (or a bundled [`lycos_apps::BenchmarkApp`]), a
//! hardware library and an area budget, then drive it through its
//! stages; every stage returns a value that carries everything the
//! next stage needs, so callers never have to thread BSB arrays,
//! restriction tables and configs by hand.

use crate::LycosError;
use lycos_apps::{BenchmarkApp, IterationHint};
use lycos_core::{allocate, AllocConfig, AllocOutcome, RMap, Restrictions};
use lycos_explore::flow::{pareto_with_store_stop, search_with_store_stop};
use lycos_explore::{table1_row_with_store_stop, Table1Options, Table1Row, Table1Subject};
use lycos_hwlib::{Area, HwLibrary};
use lycos_ir::{extract_bsbs, BsbArray, Cdfg, ProfileOverrides};
use lycos_pace::{
    partition, ArtifactStore, PaceConfig, ParetoResult, Partition, SearchOptions, SearchResult,
    StopSignal, StoreStats,
};
use std::sync::Arc;

/// Builder for the full LYCOS flow.
///
/// # Examples
///
/// ```
/// use lycos::Pipeline;
/// use lycos::hwlib::{Area, HwLibrary};
///
/// let part = Pipeline::new(
///     "app demo;
///      loop l times 500 {
///        y = y + u * dx;
///        u = u - 3 * y * dx;
///      }",
/// )
/// .with_library(HwLibrary::standard())
/// .with_budget(Area::new(6_000))
/// .allocate()?
/// .partition()?;
/// assert!(part.speedup_pct() > 0.0);
/// # Ok::<(), lycos::LycosError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Pipeline {
    source: String,
    // Pre-lowered CDFG (bundled apps ship one); skips re-parsing.
    precompiled: Option<Cdfg>,
    library: HwLibrary,
    pace: PaceConfig,
    budget: Area,
    alloc_config: AllocConfig,
    search: SearchOptions,
    overrides: Option<ProfileOverrides>,
    // §5 design iteration carried by bundled apps; drives the
    // `iterated_su` column of a Table 1 row.
    iteration: Option<IterationHint>,
    // Cross-request artifact store; `None` keeps every search cold.
    artifact_store: Option<Arc<ArtifactStore>>,
}

impl Pipeline {
    /// A pipeline over `source`, with the standard library, the
    /// standard PACE configuration and a 10 000 GE budget.
    pub fn new(source: impl Into<String>) -> Self {
        Pipeline {
            source: source.into(),
            precompiled: None,
            library: HwLibrary::standard(),
            pace: PaceConfig::standard(),
            budget: Area::new(10_000),
            alloc_config: AllocConfig::default(),
            search: SearchOptions::default(),
            overrides: None,
            iteration: None,
            artifact_store: None,
        }
    }

    /// A pipeline over a bundled benchmark, at its Table 1 budget.
    /// Reuses the app's already-compiled CDFG and carries its §5
    /// design-iteration hint.
    pub fn for_app(app: &BenchmarkApp) -> Self {
        let mut p = Pipeline::new(app.source).with_budget(Area::new(app.area_budget));
        p.precompiled = Some(app.cdfg.clone());
        p.iteration = app.iteration;
        p
    }

    /// Replaces the hardware library.
    #[must_use]
    pub fn with_library(mut self, library: HwLibrary) -> Self {
        self.library = library;
        self
    }

    /// Sets the total hardware area budget.
    #[must_use]
    pub fn with_budget(mut self, budget: Area) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the PACE configuration (ECA model, communication
    /// costs, controller quantum).
    #[must_use]
    pub fn with_pace(mut self, pace: PaceConfig) -> Self {
        self.pace = pace;
        self
    }

    /// Replaces the allocation configuration (state estimate, tracing).
    #[must_use]
    pub fn with_alloc_config(mut self, config: AllocConfig) -> Self {
        self.alloc_config = config;
        self
    }

    /// Configures the allocation-space search engine (worker threads,
    /// evaluation limit, metric cache) used by [`Allocated::search`].
    #[must_use]
    pub fn with_search_options(mut self, options: SearchOptions) -> Self {
        self.search = options;
        self
    }

    /// Attaches a cross-request [`ArtifactStore`]: the search stages
    /// ([`Allocated::search`], [`Allocated::pareto`], the Table 1
    /// flow) fetch their precomputed artifacts from the store under
    /// the pipeline's content fingerprint instead of rebuilding them,
    /// and `bound` searches warm-start from previously recorded
    /// winners. Results are field-identical with or without a store.
    /// Share one store (behind [`Arc`]) across the pipelines of a
    /// server or batch to amortise per-application precompute.
    #[must_use]
    pub fn with_artifact_store(mut self, store: Arc<ArtifactStore>) -> Self {
        self.artifact_store = Some(store);
        self
    }

    /// Applies profile overrides (trip counts, probabilities) when
    /// flattening the CDFG to BSBs.
    #[must_use]
    pub fn with_profile_overrides(mut self, overrides: ProfileOverrides) -> Self {
        self.overrides = Some(overrides);
        self
    }

    /// Attaches a §5 design-iteration hint, reported as the
    /// `iterated_su` column by [`Pipeline::table1_row`]. Bundled apps
    /// carry theirs automatically via [`Pipeline::for_app`].
    #[must_use]
    pub fn with_iteration(mut self, hint: IterationHint) -> Self {
        self.iteration = Some(hint);
        self
    }

    /// Runs the complete §5 Table 1 flow for this pipeline — heuristic
    /// allocation (timed), PACE on its result, exhaustive best via the
    /// memoised search engine, the design iteration if one is attached
    /// — under the pipeline's library, PACE configuration and budget.
    ///
    /// This is the single entry point behind the `table1` bin, the
    /// `lycos table1` command and the allocation service, so their
    /// rows cannot drift.
    ///
    /// # Errors
    ///
    /// Any stage error as [`LycosError`].
    pub fn table1_row(&self, options: &Table1Options) -> Result<Table1Row, LycosError> {
        self.table1_row_stop(options, &StopSignal::never())
    }

    /// [`Pipeline::table1_row`] under an external [`StopSignal`] — the
    /// anytime seam the allocation service drives with its
    /// per-connection cancel flags. The signal governs the exhaustive
    /// search stage; on a trip the row carries the best-so-far winner
    /// and a non-`Complete` [`lycos_pace::Completion`].
    ///
    /// # Errors
    ///
    /// Any stage error as [`LycosError`].
    pub fn table1_row_stop(
        &self,
        options: &Table1Options,
        stop: &StopSignal,
    ) -> Result<Table1Row, LycosError> {
        let compiled = self.compile()?;
        let subject = Table1Subject {
            name: compiled.cdfg.name(),
            lines: lycos_frontend::line_count(&self.source),
            bsbs: &compiled.bsbs,
            budget: self.budget,
            iteration: self.iteration,
        };
        Ok(table1_row_with_store_stop(
            &subject,
            &self.library,
            &self.pace,
            options,
            self.artifact_store.as_deref(),
            stop,
        )?)
    }

    /// Runs [`Pipeline::table1_row`] over a batch of pipelines under
    /// one set of options, in order — the batch seam the allocation
    /// service and the `table1` bin share.
    ///
    /// # Errors
    ///
    /// The first failing row's [`LycosError`]; earlier rows' work is
    /// discarded.
    pub fn table1_batch(
        pipelines: &[Pipeline],
        options: &Table1Options,
    ) -> Result<Vec<Table1Row>, LycosError> {
        Self::table1_batch_stop(pipelines, options, &StopSignal::never())
    }

    /// [`Pipeline::table1_batch`] under an external [`StopSignal`],
    /// shared by every row: each row's search stage polls the same
    /// signal, so one cancellation stops the whole batch at the next
    /// row boundary (rows already finished keep their exact results;
    /// the row in flight returns best-so-far).
    ///
    /// # Errors
    ///
    /// The first failing row's [`LycosError`]; earlier rows' work is
    /// discarded.
    pub fn table1_batch_stop(
        pipelines: &[Pipeline],
        options: &Table1Options,
        stop: &StopSignal,
    ) -> Result<Vec<Table1Row>, LycosError> {
        pipelines
            .iter()
            .map(|p| p.table1_row_stop(options, stop))
            .collect()
    }

    /// Runs the frontend only: parse + lower + flatten (or reuse the
    /// pre-lowered CDFG of a bundled app).
    ///
    /// # Errors
    ///
    /// [`LycosError::Frontend`] / [`LycosError::Ir`].
    pub fn compile(&self) -> Result<Compiled, LycosError> {
        let cdfg = match &self.precompiled {
            Some(cdfg) => cdfg.clone(),
            None => lycos_frontend::compile(&self.source)?,
        };
        let bsbs = extract_bsbs(&cdfg, self.overrides.as_ref())?;
        Ok(Compiled { cdfg, bsbs })
    }

    /// Runs the flow through Algorithm 1: compile, derive ASAP
    /// restrictions, pre-allocate the data path.
    ///
    /// # Errors
    ///
    /// Any stage error as [`LycosError`].
    pub fn allocate(self) -> Result<Allocated, LycosError> {
        let compiled = self.compile()?;
        self.allocate_compiled(compiled)
    }

    /// Runs Algorithm 1 over an already-compiled stage output, so a
    /// caller that inspected [`Compiled`] does not pay for a second
    /// frontend pass.
    ///
    /// # Errors
    ///
    /// Any stage error as [`LycosError`].
    pub fn allocate_compiled(self, compiled: Compiled) -> Result<Allocated, LycosError> {
        let Compiled { cdfg, bsbs } = compiled;
        let restrictions = Restrictions::from_asap(&bsbs, &self.library)?;
        let outcome = allocate(
            &bsbs,
            &self.library,
            &self.pace.eca,
            self.budget,
            &restrictions,
            &self.alloc_config,
        )?;
        Ok(Allocated {
            library: self.library,
            pace: self.pace,
            budget: self.budget,
            search: self.search,
            artifact_store: self.artifact_store,
            cdfg,
            bsbs,
            restrictions,
            outcome,
        })
    }
}

/// Output of the frontend stage: the CDFG and its flattened BSB array.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The lowered control/data flow graph.
    pub cdfg: Cdfg,
    /// The leaf BSB array with annotated profiles.
    pub bsbs: BsbArray,
}

/// Output of the allocation stage, ready to partition.
#[derive(Clone, Debug)]
pub struct Allocated {
    library: HwLibrary,
    pace: PaceConfig,
    budget: Area,
    search: SearchOptions,
    artifact_store: Option<Arc<ArtifactStore>>,
    /// The compiled CDFG (kept for inspection and reporting).
    pub cdfg: Cdfg,
    /// The flattened BSB array the allocation was computed over.
    pub bsbs: BsbArray,
    /// The ASAP-parallelism allocation caps.
    pub restrictions: Restrictions,
    /// The result of Algorithm 1.
    pub outcome: AllocOutcome,
}

impl Allocated {
    /// The allocated data path.
    pub fn allocation(&self) -> &RMap {
        &self.outcome.allocation
    }

    /// The hardware library this allocation was computed against.
    pub fn library(&self) -> &HwLibrary {
        &self.library
    }

    /// The PACE configuration the pipeline carries.
    pub fn pace(&self) -> &PaceConfig {
        &self.pace
    }

    /// The total hardware area budget.
    pub fn budget(&self) -> Area {
        self.budget
    }

    /// Counters of the attached cross-request artifact store, or
    /// `None` when the pipeline runs cold (no store attached via
    /// [`Pipeline::with_artifact_store`]).
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.artifact_store.as_deref().map(ArtifactStore::stats)
    }

    /// Partitions with PACE under the automatic allocation.
    ///
    /// # Errors
    ///
    /// [`LycosError::Pace`] from the partitioner.
    pub fn partition(&self) -> Result<Partitioned, LycosError> {
        self.partition_with(self.allocation())
    }

    /// Sweeps the whole allocation space with the memoised, parallel
    /// search engine, returning the best allocation the partitioner
    /// can find — the paper's exhaustive baseline (§5), under the
    /// options set via [`Pipeline::with_search_options`].
    ///
    /// # Errors
    ///
    /// [`LycosError::Pace`] from partition evaluation.
    ///
    /// # Examples
    ///
    /// ```
    /// use lycos::pace::SearchOptions;
    /// use lycos::Pipeline;
    ///
    /// let allocated = Pipeline::for_app(&lycos::apps::hal())
    ///     .with_search_options(SearchOptions::new().threads(2))
    ///     .allocate()?;
    /// let best = allocated.search()?;
    /// let auto = allocated.partition()?;
    /// assert!(best.best_partition.speedup_pct() >= auto.speedup_pct());
    /// # Ok::<(), lycos::LycosError>(())
    /// ```
    pub fn search(&self) -> Result<SearchResult, LycosError> {
        self.search_with(&self.search)
    }

    /// Sweeps the allocation space under explicit search options,
    /// ignoring the ones stored in the pipeline.
    ///
    /// # Errors
    ///
    /// [`LycosError::Pace`] from partition evaluation.
    pub fn search_with(&self, options: &SearchOptions) -> Result<SearchResult, LycosError> {
        self.search_with_stop(options, &StopSignal::never())
    }

    /// [`Allocated::search_with`] under an external [`StopSignal`]:
    /// the anytime entry point. On a trip the result carries the best
    /// feasible incumbent found so far and a non-`Complete`
    /// [`lycos_pace::Completion`]; a never-tripping signal is
    /// field-identical to [`Allocated::search_with`].
    ///
    /// # Errors
    ///
    /// [`LycosError::Pace`] from partition evaluation.
    pub fn search_with_stop(
        &self,
        options: &SearchOptions,
        stop: &StopSignal,
    ) -> Result<SearchResult, LycosError> {
        Ok(search_with_store_stop(
            &self.bsbs,
            &self.library,
            self.budget,
            &self.restrictions,
            &self.pace,
            options,
            self.artifact_store.as_deref(),
            stop,
        )?)
    }

    /// Size of this application's full allocation space (`Π (cap+1)`
    /// over the ASAP restriction caps) — what a sweep would walk
    /// before any limit or pruning. Cheap (no search runs); the seam
    /// the allocation service's admission control classifies job size
    /// by.
    pub fn space_size(&self) -> u128 {
        lycos_pace::space_size(&lycos_pace::search_space(&self.restrictions))
    }

    /// Sweeps the allocation space once under the Pareto-front
    /// objective, returning the entire time×area trade-off curve up to
    /// the pipeline's budget — what N per-budget [`Allocated::search`]
    /// calls would assemble — under the options set via
    /// [`Pipeline::with_search_options`].
    ///
    /// # Errors
    ///
    /// [`LycosError::Pace`] from partition evaluation.
    ///
    /// # Examples
    ///
    /// ```
    /// use lycos::Pipeline;
    ///
    /// let allocated = Pipeline::for_app(&lycos::apps::hal()).allocate()?;
    /// let front = allocated.pareto()?;
    /// let best = allocated.search()?;
    /// // The frontier's fastest point is the full-budget winner.
    /// assert_eq!(front.points.last().unwrap().partition, best.best_partition);
    /// # Ok::<(), lycos::LycosError>(())
    /// ```
    pub fn pareto(&self) -> Result<ParetoResult, LycosError> {
        self.pareto_with(&self.search)
    }

    /// [`Allocated::pareto`] under explicit search options, ignoring
    /// the ones stored in the pipeline.
    ///
    /// # Errors
    ///
    /// [`LycosError::Pace`] from partition evaluation.
    pub fn pareto_with(&self, options: &SearchOptions) -> Result<ParetoResult, LycosError> {
        self.pareto_with_stop(options, &StopSignal::never())
    }

    /// [`Allocated::pareto_with`] under an external [`StopSignal`]: on
    /// a trip the result is the partial frontier of everything visited
    /// before the stop, marked by its [`lycos_pace::Completion`].
    ///
    /// # Errors
    ///
    /// [`LycosError::Pace`] from partition evaluation.
    pub fn pareto_with_stop(
        &self,
        options: &SearchOptions,
        stop: &StopSignal,
    ) -> Result<ParetoResult, LycosError> {
        Ok(pareto_with_store_stop(
            &self.bsbs,
            &self.library,
            self.budget,
            &self.restrictions,
            &self.pace,
            options,
            self.artifact_store.as_deref(),
            stop,
        )?)
    }

    /// Partitions with PACE under an explicit allocation — the seam
    /// used by design iterations (§5) and exploration sweeps.
    ///
    /// # Errors
    ///
    /// [`LycosError::Pace`] from the partitioner.
    pub fn partition_with(&self, allocation: &RMap) -> Result<Partitioned, LycosError> {
        let partition = partition(
            &self.bsbs,
            &self.library,
            allocation,
            self.budget,
            &self.pace,
        )?;
        Ok(Partitioned {
            allocation: allocation.clone(),
            partition,
        })
    }
}

/// Output of the partitioning stage.
#[derive(Clone, Debug)]
pub struct Partitioned {
    /// The data-path allocation the partition was evaluated under.
    pub allocation: RMap,
    /// The PACE partition.
    pub partition: Partition,
}

impl Partitioned {
    /// Speed-up over all-software execution, in percent.
    pub fn speedup_pct(&self) -> f64 {
        self.partition.speedup_pct()
    }

    /// Blocks placed in hardware.
    pub fn hw_count(&self) -> usize {
        self.partition.hw_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT_LOOP: &str = "app t;
        loop l times 800 {
          y = y + u * dx;
          u = u - 3 * y * dx;
        }";

    #[test]
    fn compile_stage_exposes_cdfg_and_bsbs() {
        let c = Pipeline::new(HOT_LOOP).compile().unwrap();
        assert_eq!(c.cdfg.name(), "t");
        assert_eq!(c.bsbs.len(), 1);
        assert_eq!(c.bsbs[0].profile, 800);
    }

    #[test]
    fn full_chain_produces_a_gainful_partition() {
        let part = Pipeline::new(HOT_LOOP)
            .with_budget(Area::new(6_000))
            .allocate()
            .unwrap()
            .partition()
            .unwrap();
        assert!(part.speedup_pct() > 0.0);
        assert!(part.hw_count() >= 1);
    }

    #[test]
    fn partition_with_reuses_the_compiled_state() {
        let allocated = Pipeline::new(HOT_LOOP)
            .with_budget(Area::new(6_000))
            .allocate()
            .unwrap();
        let auto = allocated.partition().unwrap();
        // An empty allocation forces everything to software.
        let sw = allocated.partition_with(&RMap::new()).unwrap();
        assert_eq!(sw.partition.hw_count(), 0);
        assert!(auto.partition.total_time <= sw.partition.total_time);
    }

    #[test]
    fn search_stage_honours_the_stored_options() {
        let allocated = Pipeline::new(HOT_LOOP)
            .with_budget(Area::new(6_000))
            .with_search_options(SearchOptions::new().threads(1).limit(Some(2)))
            .allocate()
            .unwrap();
        let res = allocated.search().unwrap();
        assert!(res.truncated, "limit 2 must cut the space short");
        assert!(res.evaluated <= 2);
        // Explicit options override the stored ones.
        let full = allocated
            .search_with(&SearchOptions::new().threads(2).limit(None).dp_threads(2))
            .unwrap();
        assert!(!full.truncated);
        assert_eq!(
            full.evaluated as u128 + full.skipped as u128,
            full.space_size
        );
    }

    #[test]
    fn pareto_stage_brackets_the_single_budget_search() {
        let allocated = Pipeline::new(HOT_LOOP)
            .with_budget(Area::new(6_000))
            .allocate()
            .unwrap();
        let front = allocated.pareto().unwrap();
        let best = allocated.search().unwrap();
        assert!(!front.points.is_empty());
        let fastest = front.points.last().unwrap();
        assert_eq!(fastest.partition, best.best_partition);
        assert_eq!(fastest.allocation, best.best_allocation);
        // Explicit options override the stored ones here too.
        let seq = allocated
            .pareto_with(&SearchOptions::sequential().bound(true))
            .unwrap();
        assert_eq!(seq.points, front.points);
    }

    #[test]
    fn frontend_errors_surface_as_lycos_errors() {
        let err = Pipeline::new("app broken").compile().unwrap_err();
        assert!(matches!(err, LycosError::Frontend(_)));
    }

    #[test]
    fn overrides_change_profiles() {
        let mut ov = ProfileOverrides::new();
        ov.set_trip("l", 50);
        let c = Pipeline::new(HOT_LOOP)
            .with_profile_overrides(ov)
            .compile()
            .unwrap();
        assert_eq!(c.bsbs[0].profile, 50);
    }

    #[test]
    fn table1_row_matches_the_explore_path() {
        let app = lycos_apps::hal();
        let options = Table1Options {
            search_limit: Some(500),
            threads: 1,
            ..Table1Options::default()
        };
        let via_pipeline = Pipeline::for_app(&app).table1_row(&options).unwrap();
        let direct = lycos_explore::table1_row(
            &app,
            &HwLibrary::standard(),
            &PaceConfig::standard(),
            &options,
        )
        .unwrap();
        // Identical up to the (nondeterministic) allocator wall clock.
        assert_eq!(
            lycos_explore::table1_csv_row(&via_pipeline, false),
            lycos_explore::table1_csv_row(&direct, false),
        );
        assert!(via_pipeline.iterated_su.is_none());
    }

    #[test]
    fn table1_batch_keeps_row_order() {
        let apps = [lycos_apps::straight(), lycos_apps::hal()];
        let pipelines: Vec<Pipeline> = apps.iter().map(Pipeline::for_app).collect();
        let options = Table1Options {
            search_limit: Some(200),
            threads: 1,
            ..Table1Options::default()
        };
        let rows = Pipeline::table1_batch(&pipelines, &options).unwrap();
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["straight", "hal"]);
        assert_eq!(rows[0].lines, apps[0].lines);
    }

    #[test]
    fn artifact_store_is_invisible_and_counted() {
        let store = Arc::new(ArtifactStore::new(4));
        let cold = Pipeline::new(HOT_LOOP)
            .with_budget(Area::new(6_000))
            .allocate()
            .unwrap();
        assert!(cold.store_stats().is_none(), "no store attached");
        let warm = Pipeline::new(HOT_LOOP)
            .with_budget(Area::new(6_000))
            .with_artifact_store(store)
            .allocate()
            .unwrap();
        let opts = SearchOptions::new().bound(true);
        let baseline = cold.search_with(&opts).unwrap();
        let first = warm.search_with(&opts).unwrap();
        let second = warm.search_with(&opts).unwrap();
        for res in [&first, &second] {
            assert_eq!(res.best_allocation, baseline.best_allocation);
            assert_eq!(res.best_partition, baseline.best_partition);
        }
        assert_eq!(first.stats.artifact_misses, 1);
        assert_eq!(second.stats.artifact_hits, 1);
        assert!(second.stats.warm_reseeded, "recorded winner must seed");
        let stats = warm.store_stats().unwrap();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn for_app_matches_the_bundled_budget() {
        let app = lycos_apps::hal();
        let allocated = Pipeline::for_app(&app).allocate().unwrap();
        assert_eq!(allocated.budget(), Area::new(app.area_budget));
        assert!(!allocated.allocation().is_empty());
    }
}
