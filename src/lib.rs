//! # lycos — a reproduction of the DATE 1998 LYCOS allocation paper
//!
//! This facade crate re-exports the whole reproduction of *Hardware
//! Resource Allocation for Hardware/Software Partitioning in the LYCOS
//! System* (Grode, Knudsen, Madsen — DATE 1998):
//!
//! * [`ir`] — operations, DFGs, CDFGs, BSBs, profiling (paper §3);
//! * [`frontend`] — the LYC mini-language (the paper's VHDL/C input);
//! * [`hwlib`] — functional units, gate/ECA/processor/bus cost models
//!   (§4.2);
//! * [`sched`] — ASAP/ALAP frames, mobility/overlap, list scheduling
//!   (§4.1, §5.1);
//! * [`core`] — **the contribution**: RMap, FURO, urgencies,
//!   restrictions and Algorithm 1, plus the §6 future-work extensions;
//! * [`pace`] — the PACE partitioner and exhaustive search used for
//!   evaluation (§5);
//! * [`apps`] — the four Table 1 benchmarks in LYC;
//! * [`explore`] — the experiments themselves (Table 1, Figure 3,
//!   §5.1 ablation, randomised search).
//!
//! # Quickstart
//!
//! ```
//! use lycos::core::{allocate, AllocConfig, Restrictions};
//! use lycos::hwlib::{Area, EcaModel, HwLibrary};
//! use lycos::ir::extract_bsbs;
//! use lycos::pace::{partition, PaceConfig};
//!
//! // 1. Compile a LYC program to a CDFG and flatten it to BSBs.
//! let cdfg = lycos::frontend::compile(
//!     "app demo;
//!      loop l times 500 {
//!        y = y + u * dx;
//!        u = u - 3 * y * dx;
//!      }",
//! )?;
//! let bsbs = extract_bsbs(&cdfg, None)?;
//!
//! // 2. Pre-allocate the data path (the paper's Algorithm 1).
//! let lib = HwLibrary::standard();
//! let area = Area::new(6_000);
//! let restr = Restrictions::from_asap(&bsbs, &lib)?;
//! let out = allocate(&bsbs, &lib, &EcaModel::standard(), area, &restr,
//!                    &AllocConfig::default())?;
//!
//! // 3. Partition with PACE and read off the speed-up.
//! let part = partition(&bsbs, &lib, &out.allocation, area,
//!                      &PaceConfig::standard())?;
//! assert!(part.speedup_pct() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use lycos_apps as apps;
pub use lycos_core as core;
pub use lycos_explore as explore;
pub use lycos_frontend as frontend;
pub use lycos_hwlib as hwlib;
pub use lycos_ir as ir;
pub use lycos_pace as pace;
pub use lycos_sched as sched;
