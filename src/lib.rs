//! # lycos — a reproduction of the DATE 1998 LYCOS allocation paper
//!
//! This facade crate ties together the whole reproduction of *Hardware
//! Resource Allocation for Hardware/Software Partitioning in the LYCOS
//! System* (Grode, Knudsen, Madsen — DATE 1998):
//!
//! * [`ir`] — operations, DFGs, CDFGs, BSBs, profiling (paper §3);
//! * [`frontend`] — the LYC mini-language (the paper's VHDL/C input);
//! * [`hwlib`] — functional units, gate/ECA/processor/bus cost models
//!   (§4.2);
//! * [`sched`] — ASAP/ALAP frames, mobility/overlap, list scheduling
//!   (§4.1, §5.1);
//! * [`core`] — **the contribution**: RMap, FURO, urgencies,
//!   restrictions and Algorithm 1, plus the §6 future-work extensions;
//! * [`pace`] — the PACE partitioner and exhaustive search used for
//!   evaluation (§5);
//! * [`apps`] — the four Table 1 benchmarks in LYC;
//! * [`explore`] — the experiments themselves (Table 1, Figure 3,
//!   §5.1 ablation, randomised search).
//!
//! The crate's own contribution is the [`Pipeline`] builder — one
//! end-to-end entry point over those layers — and [`LycosError`], the
//! unified error every per-crate error converts into.
//!
//! # Quickstart
//!
//! ```
//! use lycos::hwlib::{Area, HwLibrary};
//! use lycos::Pipeline;
//!
//! // Compile a LYC program, pre-allocate the data path within 6000
//! // gate equivalents (Algorithm 1), then partition with PACE.
//! let allocated = lycos::Pipeline::new(
//!     "app demo;
//!      loop l times 500 {
//!        y = y + u * dx;
//!        u = u - 3 * y * dx;
//!      }",
//! )
//! .with_library(HwLibrary::standard())
//! .with_budget(Area::new(6_000))
//! .allocate()?;
//!
//! println!("data path: {}", allocated.allocation().display_with(allocated.library()));
//!
//! let part = allocated.partition()?;
//! assert!(part.speedup_pct() > 0.0);
//! # Ok::<(), lycos::LycosError>(())
//! ```
//!
//! The individual layers stay available for flows the builder does not
//! cover (exhaustive search, module selection, multi-ASIC allocation):
//!
//! ```
//! use lycos::core::{allocate, AllocConfig, Restrictions};
//! use lycos::hwlib::{Area, EcaModel, HwLibrary};
//! use lycos::ir::extract_bsbs;
//!
//! let cdfg = lycos::frontend::compile("app tiny; y = a * b + c;")?;
//! let bsbs = extract_bsbs(&cdfg, None)?;
//! let lib = HwLibrary::standard();
//! let restr = Restrictions::from_asap(&bsbs, &lib)?;
//! let out = allocate(&bsbs, &lib, &EcaModel::standard(), Area::new(6_000),
//!                    &restr, &AllocConfig::default())?;
//! assert!(out.remaining <= Area::new(6_000));
//! # Ok::<(), lycos::LycosError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod pipeline;

pub use error::LycosError;
pub use pipeline::{Allocated, Compiled, Partitioned, Pipeline};

pub use lycos_apps as apps;
pub use lycos_core as core;
pub use lycos_explore as explore;
pub use lycos_frontend as frontend;
pub use lycos_hwlib as hwlib;
pub use lycos_ir as ir;
pub use lycos_pace as pace;
pub use lycos_sched as sched;
