//! The §5 design iteration on the Mandelbrot benchmark.
//!
//! Reproduces the paper's `man` narrative end to end: the optimistic
//! controller estimate makes Algorithm 1 over-allocate constant
//! generators; the partitioner then cannot afford the hot blocks'
//! controllers and the speed-up collapses. One manual step — reduce
//! the constant generators to one — recovers nearly the best speed-up.
//!
//! ```text
//! cargo run --release --example design_iteration
//! ```

use lycos::explore::apply_iteration;
use lycos::{LycosError, Pipeline};

fn main() -> Result<(), LycosError> {
    let app = lycos::apps::man();

    // The automatic flow: compile, allocate, partition.
    let allocated = Pipeline::for_app(&app).allocate()?;
    let lib = allocated.library();
    let auto = allocated.partition()?;
    println!(
        "automatic allocation: {}",
        allocated.allocation().display_with(lib)
    );
    println!(
        "  speed-up {:.0}%  ({} blocks in HW)",
        auto.speedup_pct(),
        auto.hw_count()
    );

    let constgen = lib.by_name("constgen").expect("standard library unit");
    println!(
        "  -> {} constant generators allocated; the colour block's dozen\n     parallel palette loads drove the overlap metric (§5)",
        allocated.allocation().count(constgen)
    );

    // The designer's single iteration: constant generators -> 1,
    // re-partitioned over the same compiled state.
    let hint = app.iteration.expect("man carries the §5 iteration");
    let adjusted = apply_iteration(allocated.allocation(), hint, lib);
    let fixed = allocated.partition_with(&adjusted)?;
    println!(
        "\nafter one design iteration: {}",
        adjusted.display_with(lib)
    );
    println!(
        "  speed-up {:.0}%  ({} blocks in HW)",
        fixed.speedup_pct(),
        fixed.hw_count()
    );

    let gain = fixed.speedup_pct() / auto.speedup_pct();
    println!("\nthe iteration multiplied the speed-up by {gain:.1}×");
    assert!(
        fixed.speedup_pct() > auto.speedup_pct() * 1.2,
        "the iteration must recover a substantially better partition"
    );
    Ok(())
}
