//! The §5 design iteration on the Mandelbrot benchmark.
//!
//! Reproduces the paper's `man` narrative end to end: the optimistic
//! controller estimate makes Algorithm 1 over-allocate constant
//! generators; the partitioner then cannot afford the colour-block
//! controller and the speed-up collapses. One manual step — reduce the
//! constant generators to one — recovers nearly the best speed-up.
//!
//! ```text
//! cargo run --release --example design_iteration
//! ```

use lycos::core::{allocate, AllocConfig, Restrictions};
use lycos::explore::apply_iteration;
use lycos::hwlib::{Area, HwLibrary};
use lycos::pace::{partition, PaceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = lycos::apps::man();
    let bsbs = app.bsbs();
    let lib = HwLibrary::standard();
    let pace = PaceConfig::standard();
    let area = Area::new(app.area_budget);
    let restrictions = Restrictions::from_asap(&bsbs, &lib)?;

    // The automatic allocation.
    let outcome = allocate(
        &bsbs,
        &lib,
        &pace.eca,
        area,
        &restrictions,
        &AllocConfig::default(),
    )?;
    let auto = partition(&bsbs, &lib, &outcome.allocation, area, &pace)?;
    println!(
        "automatic allocation: {}",
        outcome.allocation.display_with(&lib)
    );
    println!(
        "  speed-up {:.0}%  ({} blocks in HW)",
        auto.speedup_pct(),
        auto.hw_count()
    );

    let constgen = lib.by_name("constgen").expect("standard library unit");
    println!(
        "  -> {} constant generators allocated; the colour block's dozen\n     parallel palette loads drove the overlap metric (§5)",
        outcome.allocation.count(constgen)
    );

    // The designer's single iteration: constant generators -> 1.
    let hint = app.iteration.expect("man carries the §5 iteration");
    let adjusted = apply_iteration(&outcome.allocation, hint, &lib);
    let fixed = partition(&bsbs, &lib, &adjusted, area, &pace)?;
    println!(
        "\nafter one design iteration: {}",
        adjusted.display_with(&lib)
    );
    println!(
        "  speed-up {:.0}%  ({} blocks in HW)",
        fixed.speedup_pct(),
        fixed.hw_count()
    );

    let gain = fixed.speedup_pct() / auto.speedup_pct();
    println!("\nthe iteration multiplied the speed-up by {gain:.1}×");
    assert!(
        fixed.speedup_pct() > auto.speedup_pct() * 1.2,
        "the iteration must recover a substantially better partition"
    );
    Ok(())
}
