//! Quickstart: from LYC source to a partitioned hardware/software
//! system in five steps.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lycos::core::{allocate, AllocConfig, Restrictions};
use lycos::hwlib::{Area, HwLibrary};
use lycos::ir::extract_bsbs;
use lycos::pace::{partition, PaceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An application in LYC: a hot integration loop plus cold set-up.
    let source = "
        app integrate;
        x = 0;
        loop steps times 2000 test (x < limit) {
            v1 = k1 * x;
            v2 = k2 * x;
            y = y + v1 + v2;
            x = x + dx;
        }
        emit y;
    ";
    let cdfg = lycos::frontend::compile(source)?;
    println!("--- CDFG ---\n{cdfg}");

    // 2. Flatten to the leaf BSB array the algorithms work on.
    let bsbs = extract_bsbs(&cdfg, None)?;
    for b in &bsbs {
        println!("{b}");
    }

    // 3. Derive the ASAP-parallelism allocation caps (§4.3).
    let lib = HwLibrary::standard();
    let restrictions = Restrictions::from_asap(&bsbs, &lib)?;
    println!("\nrestrictions: {}", restrictions.display_with(&lib));

    // 4. Pre-allocate the data path within 6000 gate equivalents
    //    (the paper's Algorithm 1).
    let pace = PaceConfig::standard();
    let area = Area::new(6_000);
    let outcome = allocate(
        &bsbs,
        &lib,
        &pace.eca,
        area,
        &restrictions,
        &AllocConfig::default(),
    )?;
    println!("allocation  : {}", outcome.allocation.display_with(&lib));
    println!("data path   : {}", outcome.allocation.area(&lib));

    // 5. Partition with PACE and report the speed-up.
    let part = partition(&bsbs, &lib, &outcome.allocation, area, &pace)?;
    println!("\n--- partition ---");
    for (i, b) in bsbs.iter().enumerate() {
        println!("  [{}] {}", if part.in_hw[i] { "HW" } else { "sw" }, b.name);
    }
    println!("all-software time : {}", part.all_sw_time);
    println!("hybrid time       : {}", part.total_time);
    println!("speed-up          : {:.0}%", part.speedup_pct());
    assert!(part.speedup_pct() > 0.0, "the hot loop must gain");
    Ok(())
}
