//! Quickstart: from LYC source to a partitioned hardware/software
//! system through the `Pipeline` facade.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lycos::hwlib::{Area, HwLibrary};
use lycos::{LycosError, Pipeline};

fn main() -> Result<(), LycosError> {
    // 1. An application in LYC: a hot integration loop plus cold set-up.
    let pipeline = Pipeline::new(
        "
        app integrate;
        x = 0;
        loop steps times 2000 test (x < limit) {
            v1 = k1 * x;
            v2 = k2 * x;
            y = y + v1 + v2;
            x = x + dx;
        }
        emit y;
    ",
    )
    .with_library(HwLibrary::standard())
    .with_budget(Area::new(6_000));

    // 2. The frontend stage alone: CDFG plus the leaf BSB array.
    let compiled = pipeline.compile()?;
    println!("--- CDFG ---\n{}", compiled.cdfg);
    for b in &compiled.bsbs {
        println!("{b}");
    }

    // 3. Algorithm 1: ASAP restrictions + data-path pre-allocation
    //    within 6000 gate equivalents (handing the compiled stage
    //    forward, so the frontend runs once).
    let allocated = pipeline.allocate_compiled(compiled)?;
    let lib = allocated.library();
    println!(
        "\nrestrictions: {}",
        allocated.restrictions.display_with(lib)
    );
    println!("allocation  : {}", allocated.allocation().display_with(lib));
    println!("data path   : {}", allocated.allocation().area(lib));

    // 4. Partition with PACE and report the speed-up.
    let part = allocated.partition()?;
    let p = &part.partition;
    println!("\n--- partition ---");
    for (i, b) in allocated.bsbs.iter().enumerate() {
        println!("  [{}] {}", if p.in_hw[i] { "HW" } else { "sw" }, b.name);
    }
    println!("all-software time : {}", p.all_sw_time);
    println!("hybrid time       : {}", p.total_time);
    println!("speed-up          : {:.0}%", part.speedup_pct());
    assert!(part.speedup_pct() > 0.0, "the hot loop must gain");
    Ok(())
}
