//! The Figure 3 trade-off, measured: small data path / many
//! controllers versus large data path / few controllers.
//!
//! Sweeps every legal allocation for the `hal` benchmark, buckets them
//! by data-path share of the total hardware area and prints the best
//! speed-up and hardware-block count per bucket — the quantitative
//! version of the paper's conceptual Figure 3.
//!
//! ```text
//! cargo run --release --example tradeoff_explorer
//! ```

use lycos::explore::{format_tradeoff, tradeoff_sweep};
use lycos::{LycosError, Pipeline};

fn main() -> Result<(), LycosError> {
    let app = lycos::apps::hal();

    // The pipeline's allocation stage provides everything the sweep
    // needs: the compiled BSBs, the restriction caps and the budget.
    let allocated = Pipeline::for_app(&app).allocate()?;

    println!(
        "Figure 3 sweep on `{}` (total area {}, {} allocations max)\n",
        app.name,
        allocated.budget(),
        lycos::pace::space_size(&lycos::pace::search_space(&allocated.restrictions)),
    );
    let points = tradeoff_sweep(
        &allocated.bsbs,
        allocated.library(),
        allocated.budget(),
        &allocated.restrictions,
        allocated.pace(),
        10,
    )?;
    println!("{}", format_tradeoff(&points));

    // The printable moral of Figure 3: the best speed-up lives neither
    // at the smallest nor necessarily at the largest data path.
    let non_empty: Vec<_> = points.iter().filter(|p| p.allocations > 0).collect();
    if let Some(best) = non_empty
        .iter()
        .max_by(|a, b| a.best_su.partial_cmp(&b.best_su).expect("finite"))
    {
        println!(
            "best bucket: {:.0}-{:.0}% data path -> {:.0}% speed-up with {} HW blocks",
            best.dp_fraction_lo * 100.0,
            best.dp_fraction_hi * 100.0,
            best.best_su,
            best.hw_blocks
        );
    }
    Ok(())
}
