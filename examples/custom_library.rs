//! Using a custom hardware library plus the paper's §6 future-work
//! extensions: module selection and multi-ASIC allocation.
//!
//! ```text
//! cargo run --release --example custom_library
//! ```

use lycos::core::{allocate_multi_asic, select_modules, AllocConfig, AsicPlan, SelectionStrategy};
use lycos::hwlib::{Area, FuSpec, HwLibrary};
use lycos::ir::OpKind;
use lycos::{LycosError, Pipeline};

fn main() -> Result<(), LycosError> {
    let app = lycos::apps::hal();

    // --- module selection (§6 extension) --------------------------------
    // The extended library offers slower/cheaper and faster/larger
    // alternatives; selection picks a default per operation type, and
    // the pipeline runs the whole flow under each choice.
    let extended = HwLibrary::extended();
    let bsbs = app.bsbs();
    for strategy in [
        SelectionStrategy::Fastest,
        SelectionStrategy::Smallest,
        SelectionStrategy::AreaDelayProduct,
    ] {
        let lib = select_modules(&extended, &bsbs, strategy)?;
        let allocated = Pipeline::for_app(&app).with_library(lib).allocate()?;
        let p = allocated.partition()?;
        let lib = allocated.library();
        println!(
            "{strategy:?}: multiplier = {:<17} speed-up {:>6.0}%  datapath {}",
            lib.fu(lib.fu_for(OpKind::Mul)?).name,
            p.speedup_pct(),
            allocated.allocation().area(lib)
        );
    }

    // --- a hand-rolled library ------------------------------------------
    // A genuinely custom technology: a fused multiply-add unit.
    let mut custom = HwLibrary::standard();
    let mac = custom.add_fu(FuSpec::new(
        "mac",
        Area::new(2_300),
        2,
        vec![OpKind::Mul, OpKind::Add],
    ));
    custom.set_default(OpKind::Mul, mac)?;
    custom.set_default(OpKind::Add, mac)?;
    let allocated = Pipeline::for_app(&app).with_library(custom).allocate()?;
    let p = allocated.partition()?;
    println!(
        "\ncustom MAC library: {}  speed-up {:.0}%",
        allocated.allocation().display_with(allocated.library()),
        p.speedup_pct()
    );

    // --- multi-ASIC targets (§6 extension) -------------------------------
    // Split the eigen kernel across two ASICs with separate budgets.
    let eigen = lycos::apps::eigen();
    let ebsbs = eigen.bsbs();
    let lib = HwLibrary::standard();
    let pace = lycos::pace::PaceConfig::standard();
    let plan = AsicPlan::new(vec![Area::new(9_000), Area::new(9_000)]);
    let multi = allocate_multi_asic(&ebsbs, &lib, &pace.eca, &plan, &AllocConfig::default())?;
    println!("\nmulti-ASIC eigen: {} ASICs", multi.segments.len());
    for (i, (seg, out)) in multi.segments.iter().zip(&multi.outcomes).enumerate() {
        println!(
            "  ASIC {i}: blocks {:>2}..{:<2} data path {} = {}",
            seg.start,
            seg.end,
            out.allocation.area(&lib),
            out.allocation.display_with(&lib)
        );
    }
    Ok(())
}
